"""The semantic query-result cache: unit, engine and serving behavior.

Unit tests drive :class:`~repro.cache.SemanticResultCache` standalone
(publication is explicit, so per-method invalidation is exercised
directly); the integration halves check the wiring contracts — batch
partition/backfill, the serving fast path that bypasses queue and
window but not the tenant bucket, and the dead-on-arrival admission
fix.  The delta/no-stale-reads property suite lives in
``test_query_cache_properties.py``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache import (
    CACHE_ENV,
    CacheSignature,
    SemanticResultCache,
    resolve_query_cache,
)
from repro.core.engine import DiscoveryEngine
from repro.core.results import RelationMatch
from repro.errors import ConfigurationError, DeadlineExceeded, QueueFull, RateLimited
from repro.serving import RateLimit

QUERIES = [
    "vaccination campaign europe",
    "football league results",
    "gdp figures by country",
    "comirnaty germany",
]


def unit(dim: int, axis: int) -> np.ndarray:
    vec = np.zeros(dim, dtype=np.float32)
    vec[axis] = 1.0
    return vec


def blend(dim: int, axis_a: int, axis_b: int, weight: float) -> np.ndarray:
    """A unit vector at cosine ``weight`` to ``unit(dim, axis_a)``."""
    vec = weight * unit(dim, axis_a) + np.sqrt(1.0 - weight**2) * unit(dim, axis_b)
    return np.asarray(vec, dtype=np.float32)


def matches(*ids: str) -> tuple[RelationMatch, ...]:
    return tuple(RelationMatch(rid, 1.0 - 0.1 * i) for i, rid in enumerate(ids))


SIG = CacheSignature(method="exs", k=4, h=0.0)
ANNS_SIG = CacheSignature(method="anns", k=4, h=0.0)


class TestSemanticResultCache:
    def test_exact_hit_replays_the_same_match_objects(self):
        cache = SemanticResultCache()
        cache.publish_generation("exs", 3)
        stored = matches("a/a", "b/b")
        cache.insert(SIG, "q", unit(8, 0), stored, 3)
        hit = cache.lookup(SIG, "q")
        assert hit is not None and hit.kind == "exact"
        assert hit.matches is stored  # bitwise identity, not a copy
        assert hit.generation == 3
        counters = cache.metrics.snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert "cache.misses" not in counters

    def test_unpublished_method_never_hits(self):
        cache = SemanticResultCache()
        assert cache.lookup(SIG, "q") is None
        assert cache.metrics.snapshot()["counters"]["cache.misses"] == 1

    def test_signature_isolation(self):
        cache = SemanticResultCache()
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "q", unit(8, 0), matches("a/a"), 1)
        other_k = CacheSignature(method="exs", k=10, h=0.0)
        assert cache.lookup(other_k, "q") is None
        assert cache.lookup(SIG, "q") is not None

    def test_generation_advance_evicts_lazily(self):
        cache = SemanticResultCache()
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "q", unit(8, 0), matches("a/a"), 1)
        cache.publish_generation("exs", 2)
        assert cache.lookup(SIG, "q") is None
        counters = cache.metrics.snapshot()["counters"]
        assert counters["cache.evictions"] == 1
        assert len(cache) == 0

    def test_per_method_granularity(self):
        """An ExS-only generation advance must not nuke ANNS entries."""
        cache = SemanticResultCache()
        cache.publish_generation("exs", 5)
        cache.publish_generation("anns", 5)
        cache.insert(SIG, "q", unit(8, 0), matches("a/a"), 5)
        cache.insert(ANNS_SIG, "q", unit(8, 1), matches("b/b"), 5)
        cache.publish_generation("exs", 6)
        assert cache.lookup(SIG, "q") is None  # exs entry is stale
        anns_hit = cache.lookup(ANNS_SIG, "q")
        assert anns_hit is not None and anns_hit.matches == matches("b/b")

    def test_stale_insert_is_dropped(self):
        cache = SemanticResultCache()
        cache.publish_generation("exs", 7)
        cache.insert(SIG, "q", unit(8, 0), matches("a/a"), 6)  # pre-delta compute
        assert len(cache) == 0
        assert cache.lookup(SIG, "q") is None

    def test_near_hit_above_tau(self):
        cache = SemanticResultCache(tau=0.9)
        cache.publish_generation("exs", 1)
        stored = matches("a/a")
        cache.insert(SIG, "original", unit(8, 0), stored, 1)
        near = cache.lookup(SIG, "paraphrase", encode=lambda: blend(8, 0, 1, 0.95))
        assert near is not None and near.kind == "near"
        assert near.matches is stored
        assert near.source_query == "original"
        assert near.similarity == pytest.approx(0.95, abs=1e-5)
        counters = cache.metrics.snapshot()["counters"]
        assert counters["cache.near_hits"] == 1
        assert cache.metrics.snapshot()["stages"]["cache.probe_ms"]["count"] == 1

    def test_near_miss_below_tau(self):
        cache = SemanticResultCache(tau=0.9)
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "original", unit(8, 0), matches("a/a"), 1)
        assert cache.lookup(SIG, "far", encode=lambda: blend(8, 0, 1, 0.5)) is None
        assert cache.metrics.snapshot()["counters"]["cache.misses"] == 1

    def test_tau_one_is_exact_only(self):
        """tau=1.0 disables the probe: float32 roundoff keeps even a
        re-encoded identical vector a hair below 1.0, so near hits at
        tau=1.0 would be noise, not a guarantee."""
        cache = SemanticResultCache(tau=1.0)
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "original", unit(8, 0), matches("a/a"), 1)
        assert cache.lookup(SIG, "other", encode=lambda: blend(8, 0, 1, 0.999)) is None
        assert cache.lookup(SIG, "original") is not None  # text hit still works
        assert "cache.near_hits" not in cache.metrics.snapshot()["counters"]

    def test_near_hit_respects_generation(self):
        """A near-duplicate must never resurrect a pre-delta ranking."""
        cache = SemanticResultCache(tau=0.9)
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "original", unit(8, 0), matches("a/a"), 1)
        cache.publish_generation("exs", 2)
        assert cache.lookup(SIG, "near", encode=lambda: blend(8, 0, 1, 0.99)) is None

    def test_lru_eviction_by_capacity(self):
        cache = SemanticResultCache(capacity=2)
        cache.publish_generation("exs", 1)
        for i, query in enumerate(["q0", "q1", "q2"]):
            cache.insert(SIG, query, unit(8, i), matches(f"r{i}/r{i}"), 1)
        assert len(cache) == 2
        assert cache.lookup(SIG, "q0") is None  # oldest evicted
        assert cache.lookup(SIG, "q2") is not None
        assert cache.metrics.snapshot()["counters"]["cache.evictions"] == 1

    def test_lru_order_follows_use_not_insertion(self):
        cache = SemanticResultCache(capacity=2)
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "q0", unit(8, 0), matches("a/a"), 1)
        cache.insert(SIG, "q1", unit(8, 1), matches("b/b"), 1)
        assert cache.lookup(SIG, "q0") is not None  # refresh q0
        cache.insert(SIG, "q2", unit(8, 2), matches("c/c"), 1)
        assert cache.lookup(SIG, "q1") is None  # q1 was the LRU
        assert cache.lookup(SIG, "q0") is not None

    def test_byte_bound_and_gauge(self):
        cache = SemanticResultCache(max_bytes=1)  # any entry overflows
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "q0", unit(8, 0), matches("a/a"), 1)
        cache.insert(SIG, "q1", unit(8, 1), matches("b/b"), 1)
        assert len(cache) <= 1
        assert cache.metrics.snapshot()["counters"]["cache.evictions"] >= 1

    def test_bytes_gauge_tracks_inserts_and_invalidation(self):
        cache = SemanticResultCache()
        cache.publish_generation("exs", 1)
        cache.insert(SIG, "q0", unit(8, 0), matches("a/a"), 1)
        gauges = cache.metrics.snapshot()["gauges"]
        assert gauges["cache.bytes"] == float(cache.total_bytes()) > 0
        cache.invalidate_all()
        assert cache.metrics.snapshot()["gauges"]["cache.bytes"] == 0.0
        assert len(cache) == 0

    def test_invalidate_all_bumps_epoch_against_recycled_generations(self):
        """A re-index restarts generation numbering; the epoch bump
        keeps recycled numbers from resurrecting pre-swap entries."""
        cache = SemanticResultCache()
        cache.publish_generation("exs", 0)
        cache.insert(SIG, "q", unit(8, 0), matches("a/a"), 0)
        before = cache.info()["epoch"]
        cache.invalidate_all()
        cache.publish_generation("exs", 0)  # same number, new store
        assert cache.info()["epoch"] == before + 1
        assert cache.lookup(SIG, "q") is None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SemanticResultCache(capacity=0)
        with pytest.raises(ConfigurationError):
            SemanticResultCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            SemanticResultCache(tau=0.0)
        with pytest.raises(ConfigurationError):
            SemanticResultCache(tau=1.5)


class TestResolveQueryCache:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert resolve_query_cache(None) is None
        assert resolve_query_cache(False) is None
        assert resolve_query_cache("off") is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "1")
        cache = resolve_query_cache(None)
        assert isinstance(cache, SemanticResultCache)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "tau=0.9, capacity=12, max_bytes=4096")
        cache = resolve_query_cache(None)
        assert cache is not None
        assert cache.tau == pytest.approx(0.9)
        assert cache.capacity == 12
        assert cache.max_bytes == 4096

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_query_cache("window=3")
        with pytest.raises(ConfigurationError):
            resolve_query_cache("tau=large")

    def test_instance_passthrough_rebinds_metrics(self):
        cache = SemanticResultCache()
        engine = DiscoveryEngine(dim=32, query_cache=cache)
        assert engine.query_cache is cache
        assert cache.metrics is engine.metrics
        engine.close()

    def test_engine_env_wiring(self, tiny_federation, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "1")
        engine = DiscoveryEngine(dim=32)
        assert engine.query_cache is not None
        engine.close()


# -- engine integration ------------------------------------------------------


@pytest.fixture()
def cached_engine(tiny_federation) -> DiscoveryEngine:
    engine = DiscoveryEngine(dim=48, query_cache=True)
    engine.index(tiny_federation)
    engine.method("exs")
    yield engine
    engine.close()


class TestEngineIntegration:
    def test_repeat_search_is_bitwise_identical(self, cached_engine):
        first = cached_engine.search(QUERIES[0], method="exs", k=3)
        second = cached_engine.search(QUERIES[0], method="exs", k=3)
        assert second.relation_ids() == first.relation_ids()
        for got, want in zip(second.matches, first.matches):
            assert got.score == want.score  # exact, not approx
        counters = cached_engine.metrics.snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["exs.queries"] == 1  # the method ran once

    def test_near_duplicate_text_hits(self, cached_engine):
        """Repeating the query text leaves the mean-pooled embedding's
        direction unchanged — a textbook near-duplicate."""
        first = cached_engine.search(QUERIES[0], method="exs", k=3)
        doubled = f"{QUERIES[0]} {QUERIES[0]}"
        near = cached_engine.search(doubled, method="exs", k=3)
        assert near.relation_ids() == first.relation_ids()
        assert cached_engine.metrics.snapshot()["counters"]["cache.near_hits"] == 1

    def test_batch_partitions_hits_and_misses(self, cached_engine):
        # Warm two of four queries.
        for query in QUERIES[:2]:
            cached_engine.search(query, method="exs", k=3)
        batch = cached_engine.search_batch(QUERIES, method="exs", k=3)
        counters = cached_engine.metrics.snapshot()["counters"]
        # ONE residual dispatch carried the two misses.
        assert counters["exs.batches"] == 1
        assert counters["cache.hits"] == 2
        for query, result in zip(QUERIES, batch):
            direct = cached_engine.method("exs").search(query, k=3)
            assert result.relation_ids() == direct.relation_ids()

    def test_all_hit_batch_never_reaches_the_method(self, cached_engine):
        cached_engine.search_batch(QUERIES, method="exs", k=3)
        counters = cached_engine.metrics.snapshot()["counters"]
        assert counters["exs.batches"] == 1
        cached_engine.search_batch(QUERIES, method="exs", k=3)  # fully warm
        counters = cached_engine.metrics.snapshot()["counters"]
        assert counters["exs.batches"] == 1  # unchanged: no residual batch
        assert counters["engine.batches"] == 2  # the engine call still counted

    def test_delta_invalidates(self, cached_engine):
        from repro.datamodel.relation import Relation

        cached_engine.search(QUERIES[0], method="exs", k=3)  # warm the cache
        hits_before = cached_engine.metrics.snapshot()["counters"].get("cache.hits", 0)
        cached_engine.add_relations(
            {"new/new": Relation("new", ["A"], [["vaccination europe"]], caption="new")}
        )
        fresh = cached_engine.search(QUERIES[0], method="exs", k=3)
        with cached_engine.read_lock():
            reference = cached_engine.method("exs").search(QUERIES[0], k=3)
        assert fresh.relation_ids() == reference.relation_ids()
        assert (
            cached_engine.metrics.snapshot()["counters"].get("cache.hits", 0)
            == hits_before
        )

    def test_reindex_invalidates_despite_recycled_generation(
        self, cached_engine, tiny_federation
    ):
        cached_engine.search(QUERIES[0], method="exs", k=3)
        assert len(cached_engine.query_cache) == 1
        cached_engine.index(tiny_federation)  # generation restarts at 0
        assert len(cached_engine.query_cache) == 0
        result = cached_engine.search(QUERIES[0], method="exs", k=3)
        assert result.relation_ids()
        counters = cached_engine.metrics.snapshot()["counters"]
        # Both searches were misses: the reindex dropped the warm entry.
        assert counters.get("cache.hits", 0) == 0
        assert counters["cache.misses"] == 2


# -- serving integration -----------------------------------------------------


def run(coro):
    return asyncio.run(coro)


class TestServingCache:
    def test_hit_resolves_without_queue_slot_or_window(self, cached_engine):
        warm = cached_engine.search(QUERIES[0], method="exs", k=3)
        base = cached_engine.metrics.snapshot()["counters"]

        async def serve():
            async with cached_engine.serving(window_ms=2.0) as serving:
                result = await serving.submit(QUERIES[0], method="exs", k=3)
                assert serving.outstanding == 0  # never took a slot
                return result

        result = run(serve())
        assert result.relation_ids() == warm.relation_ids()
        counters = cached_engine.metrics.snapshot()["counters"]
        assert counters["serving.cache_hits"] == 1
        assert counters["serving.completed"] == 1
        assert "serving.batches" not in counters  # no window dispatched
        assert counters.get("exs.batches", 0) == base.get("exs.batches", 0)  # never bumped

    def test_hit_bypasses_a_full_queue(self, cached_engine):
        cached_engine.search(QUERIES[0], method="exs", k=3)

        async def serve():
            async with cached_engine.serving(
                window_ms=60_000.0, max_batch=8, max_queue=1
            ) as serving:
                parked = asyncio.ensure_future(
                    serving.submit(QUERIES[1], method="exs", k=3)
                )
                await asyncio.sleep(0)
                with pytest.raises(QueueFull):
                    await serving.submit(QUERIES[2], method="exs", k=3)
                # The warm query sails past the full queue.
                hit = await serving.submit(QUERIES[0], method="exs", k=3)
                assert hit.relation_ids()
                serving.batcher.flush_all()
                await parked

        run(serve())

    def test_hit_still_pays_the_token_bucket(self, cached_engine):
        cached_engine.search(QUERIES[0], method="exs", k=3)
        limits = {"greedy": RateLimit(rate=0.001, burst=1.0)}

        async def serve():
            async with cached_engine.serving(
                window_ms=2.0, tenant_limits=limits
            ) as serving:
                await serving.submit(QUERIES[0], method="exs", k=3, tenant="greedy")
                with pytest.raises(RateLimited):
                    await serving.submit(
                        QUERIES[0], method="exs", k=3, tenant="greedy"
                    )

        run(serve())
        counters = cached_engine.metrics.snapshot()["counters"]
        assert counters["serving.cache_hits"] == 1
        assert counters["serving.throttled"] == 1


class TestDeadOnArrivalAdmission:
    """Satellite regression: a dead-on-arrival request must not burn a
    token-bucket token or a queue slot on its way to being shed."""

    def test_doa_burns_neither_token_nor_slot(self):
        engine = DiscoveryEngine(dim=48)
        try:
            limits = {"t": RateLimit(rate=0.001, burst=1.0)}

            async def serve():
                async with engine.serving(
                    window_ms=2.0, tenant_limits=limits, max_queue=4
                ) as serving:
                    with pytest.raises(DeadlineExceeded):
                        await serving.submit(
                            "anything", method="exs", k=3, tenant="t", timeout_ms=0.0
                        )
                    assert serving.outstanding == 0  # no queue slot consumed

            run(serve())
            counters = engine.metrics.snapshot()["counters"]
            assert counters["serving.shed"] == 1
            assert "serving.throttled" not in counters
            assert "serving.submitted" not in counters  # shed before admission
        finally:
            engine.close()

    def test_token_survives_doa_and_admits_the_next_request(self, cached_engine):
        limits = {"t": RateLimit(rate=0.001, burst=1.0)}

        async def serve():
            async with cached_engine.serving(
                window_ms=2.0, tenant_limits=limits
            ) as serving:
                with pytest.raises(DeadlineExceeded):
                    await serving.submit(
                        QUERIES[0], method="exs", k=3, tenant="t", timeout_ms=0.0
                    )
                # The bucket still holds its one burst token.
                result = await serving.submit(QUERIES[0], method="exs", k=3, tenant="t")
                assert result.relation_ids()

        run(serve())
