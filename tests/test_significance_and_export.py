"""Tests for significance testing and corpus export/import."""

import numpy as np
import pytest

from repro.data import generate_wikitables_corpus
from repro.data.export import export_corpus, load_corpus
from repro.errors import DataGenerationError, EvaluationError
from repro.eval.runner import MethodReport
from repro.eval.significance import (
    compare_reports,
    paired_bootstrap,
    paired_t_test,
)


def _scores(base: float, noise: float, n: int, seed: int) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    return {f"q{i}": float(np.clip(base + noise * rng.standard_normal(), 0, 1)) for i in range(n)}


class TestSignificance:
    def test_clear_difference_detected(self):
        a = _scores(0.8, 0.02, 30, 0)
        b = _scores(0.4, 0.02, 30, 1)
        for test in (paired_t_test, paired_bootstrap):
            result = test(a, b, "good", "bad")
            assert result.mean_difference > 0.3
            assert result.significant()

    def test_identical_scores_not_significant(self):
        a = _scores(0.6, 0.05, 20, 2)
        for test in (paired_t_test, paired_bootstrap):
            result = test(a, dict(a))
            assert result.p_value == 1.0
            assert not result.significant()

    def test_noisy_overlap_not_significant(self):
        # same mean, large per-query variance: no real difference
        a = _scores(0.60, 0.25, 10, 3)
        b = _scores(0.60, 0.25, 10, 30)
        result = paired_bootstrap(a, b)
        assert not result.significant(alpha=0.01)

    def test_sign_of_difference(self):
        a = _scores(0.3, 0.01, 15, 4)
        b = _scores(0.7, 0.01, 15, 5)
        result = paired_bootstrap(a, b)
        assert result.mean_difference < 0

    def test_requires_shared_queries(self):
        with pytest.raises(EvaluationError):
            paired_t_test({"q1": 0.5}, {"q2": 0.5})

    def test_compare_reports(self):
        ra = MethodReport("cts", 0.8, 0.8, {5: 0.8, 10: 0.8, 15: 0.8, 20: 0.8}, 10,
                          per_query_ap=_scores(0.8, 0.02, 25, 6))
        rb = MethodReport("exs", 0.5, 0.5, {5: 0.5, 10: 0.5, 15: 0.5, 20: 0.5}, 10,
                          per_query_ap=_scores(0.5, 0.02, 25, 7))
        result = compare_reports(ra, rb)
        assert result.method_a == "cts" and result.significant()
        with pytest.raises(EvaluationError):
            compare_reports(ra, rb, test="magic")

    def test_bootstrap_deterministic(self):
        a = _scores(0.6, 0.1, 12, 8)
        b = _scores(0.55, 0.1, 12, 9)
        r1 = paired_bootstrap(a, b, seed=3)
        r2 = paired_bootstrap(a, b, seed=3)
        assert r1.p_value == r2.p_value


class TestCorpusExport:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_wikitables_corpus(n_tables=25, pairs_target=120)

    def test_roundtrip(self, corpus, tmp_path):
        export_corpus(corpus, tmp_path / "dump")
        loaded = load_corpus(tmp_path / "dump")
        assert loaded.name == corpus.name
        assert len(loaded.relations) == len(corpus.relations)
        assert [q.text for q in loaded.queries] == [q.text for q in corpus.queries]
        assert loaded.qrels.pairs() == corpus.qrels.pairs()
        assert loaded.table_facets == corpus.table_facets

    def test_roundtrip_preserves_cells_and_captions(self, corpus, tmp_path):
        export_corpus(corpus, tmp_path / "dump2")
        loaded = load_corpus(tmp_path / "dump2")
        original = corpus.relations[0]
        restored = next(r for r in loaded.relations if r.name == original.name)
        assert restored.schema == original.schema
        assert restored.values() == original.values()
        assert restored.caption == original.caption

    def test_loaded_corpus_is_searchable(self, corpus, tmp_path):
        from repro.core import DiscoveryEngine
        from repro.data.corpus import DatasetScale

        export_corpus(corpus, tmp_path / "dump3")
        loaded = load_corpus(tmp_path / "dump3")
        engine = DiscoveryEngine(dim=64)
        engine.index(loaded.federation(DatasetScale.LARGE))
        result = engine.search(loaded.queries[0].text, method="exs", k=3, h=-1.0)
        assert len(result) > 0

    def test_bad_directory_rejected(self, tmp_path):
        with pytest.raises(DataGenerationError):
            load_corpus(tmp_path)
