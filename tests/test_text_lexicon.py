"""Unit tests for the concept lexicon."""

import pytest

from repro.text.lexicon import ConceptLexicon, default_lexicon


class TestConceptLexicon:
    def test_direct_concepts(self):
        lex = ConceptLexicon()
        lex.add_concept("fruit", ["apple", "banana"])
        assert lex.concepts_of("apple") == {"fruit": 1.0}
        assert lex.concepts_of("APPLE") == {"fruit": 1.0}  # normalized lookup

    def test_broader_decay(self):
        lex = ConceptLexicon()
        lex.add_concept("apple_kinds", ["gala"])
        lex.add_broader("apple_kinds", "fruit")
        lex.add_broader("fruit", "food")
        weights = lex.concepts_of("gala", depth=2, decay=0.5)
        assert weights == {"apple_kinds": 1.0, "fruit": 0.5, "food": 0.25}

    def test_depth_limits_propagation(self):
        lex = ConceptLexicon()
        lex.add_concept("a", ["x"])
        lex.add_broader("a", "b")
        lex.add_broader("b", "c")
        assert "c" not in lex.concepts_of("x", depth=1)

    def test_multiple_paths_take_max(self):
        lex = ConceptLexicon()
        lex.add_concept("a", ["x"])
        lex.add_concept("top", ["x"])  # direct membership too
        lex.add_broader("a", "top")
        assert lex.concepts_of("x")["top"] == 1.0

    def test_self_broader_rejected(self):
        lex = ConceptLexicon()
        with pytest.raises(ValueError):
            lex.add_broader("a", "a")

    def test_synonyms(self):
        lex = ConceptLexicon()
        lex.add_concept("fruit", ["apple", "banana"])
        assert lex.synonyms_of("apple") == {"banana"}

    def test_unknown_term(self):
        lex = ConceptLexicon()
        assert lex.concepts_of("ghost") == {}
        assert not lex.has_term("ghost")

    def test_narrower_and_descendant_terms(self):
        lex = ConceptLexicon()
        lex.add_concept("europe", ["europe"])
        lex.add_concept("germany", ["germany", "german"])
        lex.add_broader("germany", "europe")
        assert lex.narrower_of("europe") == {"germany"}
        assert lex.descendant_terms("europe") == {"europe", "germany", "german"}

    def test_merge(self):
        a = ConceptLexicon()
        a.add_concept("x", ["one"])
        b = ConceptLexicon()
        b.add_concept("y", ["two"])
        b.add_broader("y", "x")
        a.merge(b)
        assert a.has_term("two")
        assert a.concepts_of("two") == {"y": 1.0, "x": 0.5}


class TestDefaultLexicon:
    def test_covid_example_terms(self):
        lex = default_lexicon()
        # Figure 1 of the paper: trade names and immunogens activate COVID
        assert "covid" in lex.concepts_of("comirnaty")
        assert "vaccine" in lex.concepts_of("mrna")

    def test_countries_reach_regions(self):
        lex = default_lexicon()
        assert lex.concepts_of("poland")["europe"] == 0.5
        assert lex.concepts_of("texas")["north_america"] == 0.25  # via usa

    def test_sister_countries_share_no_direct_concept(self):
        lex = default_lexicon()
        direct_pl = {c for c, w in lex.concepts_of("poland").items() if w == 1.0}
        direct_at = {c for c, w in lex.concepts_of("austria").items() if w == 1.0}
        assert not (direct_pl & direct_at)

    def test_fresh_instance_per_call(self):
        a, b = default_lexicon(), default_lexicon()
        a.add_concept("custom", ["zzz"])
        assert not b.has_term("zzz")

    def test_every_concept_has_terms(self):
        lex = default_lexicon()
        for concept in lex.concepts:
            assert lex.terms_of(concept)
