"""Tests for the segment snapshot layer (repro.storage).

Covers the format contract end to end: atomic commits with the
manifest as the commit point, epoch-prefixed payloads surviving
re-commits under live mappings, both integrity strengths (stat-check at
open, crc32 on eager reads), mapped-buffer refcounting and leak
accounting, and the quarantined legacy-npz shims.
"""

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.obs import MetricsRegistry
from repro.storage import (
    MappedBuffer,
    SegmentWriter,
    is_snapshot,
    live_mapped_nbytes,
    live_mapped_paths,
    open_snapshot,
)
from repro.storage import npz as legacy_npz


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def write_snapshot(path, *, generation=3, meta=None, rng=None, shape=(5, 4)):
    rng = rng or np.random.default_rng(0)
    writer = SegmentWriter(path, generation=generation, meta=meta or {"kind": "test"})
    writer.add_array("vectors", rng.standard_normal(shape).astype(np.float32))
    writer.add_array("counts", np.arange(shape[0], dtype=np.int64))
    writer.add_json("relations", {"ids": ["a/x", "b/y"], "names": ["α", "β"]})
    writer.commit()
    return path


class TestWriterAndSnapshot:
    def test_roundtrip_arrays_and_json(self, tmp_path, rng):
        vectors = rng.standard_normal((6, 3)).astype(np.float32)
        writer = SegmentWriter(tmp_path / "snap", generation=9, meta={"kind": "t"})
        writer.add_array("vectors", vectors)
        writer.add_json("doc", {"names": ["solé", "日本"]})
        writer.commit()

        snap = open_snapshot(tmp_path / "snap")
        assert snap.generation == 9
        assert snap.meta == {"kind": "t"}
        got = snap.array("vectors")
        np.testing.assert_array_equal(got, vectors)
        assert got.dtype == np.float32
        assert not got.flags.writeable
        assert snap.json("doc") == {"names": ["solé", "日本"]}

    def test_is_snapshot(self, tmp_path, rng):
        assert not is_snapshot(tmp_path)  # empty dir
        legacy_npz.save_npz(tmp_path / "old.npz", {"x": np.zeros(2, dtype=np.float64)})
        assert not is_snapshot(tmp_path / "old.npz")
        assert legacy_npz.is_npz(tmp_path / "old.npz")
        write_snapshot(tmp_path / "snap", rng=rng)
        assert is_snapshot(tmp_path / "snap")

    def test_uncommitted_writer_leaves_snapshot_untouched(self, tmp_path, rng):
        write_snapshot(tmp_path / "snap", generation=1, rng=rng)
        before = sorted(p.name for p in (tmp_path / "snap").iterdir())
        writer = SegmentWriter(tmp_path / "snap", generation=2)
        writer.add_array("vectors", rng.standard_normal((2, 2)))
        # no commit()
        assert sorted(p.name for p in (tmp_path / "snap").iterdir()) == before
        assert open_snapshot(tmp_path / "snap").generation == 1

    def test_duplicate_and_invalid_names_rejected(self, tmp_path):
        writer = SegmentWriter(tmp_path / "snap")
        writer.add_array("x", np.zeros(1, dtype=np.float32))
        with pytest.raises(StorageError):
            writer.add_array("x", np.zeros(1, dtype=np.float32))
        with pytest.raises(StorageError):
            writer.add_json("x", [])
        with pytest.raises(StorageError):
            writer.add_array("../escape", np.zeros(1, dtype=np.float32))

    def test_missing_payload_name(self, tmp_path, rng):
        snap = open_snapshot(write_snapshot(tmp_path / "snap", rng=rng))
        with pytest.raises(StorageError):
            snap.array("nope")
        with pytest.raises(StorageError):
            snap.json("nope")

    def test_open_missing_or_malformed(self, tmp_path):
        with pytest.raises(StorageError):
            open_snapshot(tmp_path / "nowhere")
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "manifest.json").write_text("{not json")
        with pytest.raises(StorageError):
            open_snapshot(tmp_path / "bad")
        (tmp_path / "bad" / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(StorageError):
            open_snapshot(tmp_path / "bad")

    def test_commit_records_metrics(self, tmp_path, rng):
        metrics = MetricsRegistry()
        writer = SegmentWriter(tmp_path / "snap", metrics=metrics)
        writer.add_array("vectors", rng.standard_normal((3, 2)).astype(np.float32))
        writer.add_json("doc", [1, 2])
        writer.commit()
        assert metrics.gauge("storage.segments").value == 2.0


class TestIntegrity:
    def test_truncated_segment_fails_at_open(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", rng=rng)
        seg = next(p for p in path.iterdir() if p.name.endswith("vectors.seg"))
        seg.write_bytes(seg.read_bytes()[:-8])
        with pytest.raises(StorageError, match="torn"):
            open_snapshot(path)

    def test_corrupted_bytes_fail_the_digest(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", rng=rng)
        seg = next(p for p in path.iterdir() if p.name.endswith("vectors.seg"))
        data = bytearray(seg.read_bytes())
        data[3] ^= 0xFF  # same size, different bytes: only the crc sees it
        seg.write_bytes(bytes(data))
        snap = open_snapshot(path)  # stat-check passes
        with pytest.raises(StorageError, match="crc32"):
            snap.array("vectors")

    def test_corrupted_document_fails_the_digest(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", rng=rng)
        doc = next(p for p in path.iterdir() if p.name.endswith("relations.json"))
        data = bytearray(doc.read_bytes())
        data[1] ^= 0x01
        doc.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="crc32"):
            open_snapshot(path).json("relations")

    def test_missing_payload_file_fails_at_open(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", rng=rng)
        next(p for p in path.iterdir() if p.name.endswith("counts.seg")).unlink()
        with pytest.raises(StorageError, match="missing"):
            open_snapshot(path)


class TestEpochs:
    def test_recommit_bumps_epoch_and_sweeps(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", generation=1, rng=rng)
        assert open_snapshot(path).epoch == 0
        write_snapshot(path, generation=2, rng=rng)
        snap = open_snapshot(path)
        assert snap.epoch == 1 and snap.generation == 2
        names = [p.name for p in path.iterdir()]
        assert not any(n.startswith("00000000.") for n in names), names

    def test_live_mapping_survives_recommit(self, tmp_path, rng):
        """The sweep unlinks old-epoch files, but an open mapping keeps
        serving the old bytes — readers are never yanked mid-scan."""
        path = write_snapshot(tmp_path / "snap", generation=1, rng=rng)
        old = open_snapshot(path)
        buffer = old.mapped("vectors")
        before = buffer.array.copy()
        write_snapshot(path, generation=2, rng=np.random.default_rng(99))
        np.testing.assert_array_equal(buffer.array, before)
        buffer.close()

    def test_sweep_keeps_subdirectories(self, tmp_path, rng):
        """Sharded roots hold ``shard-<i>/`` dirs beside their payloads;
        the sweep must only ever unlink files."""
        path = write_snapshot(tmp_path / "snap", rng=rng)
        sub = path / "shard-0"
        write_snapshot(sub, rng=rng)
        write_snapshot(path, generation=5, rng=rng)
        assert is_snapshot(sub)


class TestMappedBuffer:
    def test_mapped_matches_eager(self, tmp_path, rng):
        snap = open_snapshot(write_snapshot(tmp_path / "snap", rng=rng))
        buffer = snap.mapped("vectors")
        np.testing.assert_array_equal(buffer.array, snap.array("vectors"))
        assert not buffer.array.flags.writeable
        spec = buffer.spec()
        assert spec.kind == "mmap"
        attached = MappedBuffer.attach(spec)
        np.testing.assert_array_equal(attached.array, buffer.array)
        attached.close()
        buffer.close()

    def test_empty_array_maps_without_a_file_mapping(self, tmp_path):
        writer = SegmentWriter(tmp_path / "snap")
        writer.add_array("empty", np.empty((0, 8), dtype=np.float32))
        writer.commit()
        buffer = open_snapshot(tmp_path / "snap").mapped("empty")
        assert buffer.array.shape == (0, 8)
        buffer.close()

    def test_registry_accounting(self, tmp_path, rng):
        assert not live_mapped_paths()
        snap = open_snapshot(write_snapshot(tmp_path / "snap", rng=rng))
        buffer = snap.mapped("vectors")
        assert live_mapped_paths() == [str(buffer.path)]
        assert live_mapped_nbytes() == buffer.nbytes > 0
        ref = buffer.addref()
        buffer.close()  # one ref still out
        assert live_mapped_paths() == [str(buffer.path)]
        ref.close()
        assert not live_mapped_paths()
        assert live_mapped_nbytes() == 0

    def test_use_after_close(self, tmp_path, rng):
        snap = open_snapshot(write_snapshot(tmp_path / "snap", rng=rng))
        buffer = snap.mapped("vectors")
        buffer.close()
        with pytest.raises(ValueError):
            _ = buffer.array
        with pytest.raises(ValueError):
            buffer.addref()
        buffer.close()  # idempotent

    def test_truncation_fails_at_map_time(self, tmp_path, rng):
        path = write_snapshot(tmp_path / "snap", rng=rng)
        snap = open_snapshot(path)
        seg = next(p for p in path.iterdir() if p.name.endswith("vectors.seg"))
        seg.write_bytes(seg.read_bytes()[:-4])
        with pytest.raises(StorageError, match="torn"):
            snap.mapped("vectors")

    def test_attach_rejects_shm_spec(self):
        from repro.linalg.sharedbuf import BufferSpec

        spec = BufferSpec(name="x", shape=(1,), dtype="<f4", kind="shm")
        with pytest.raises(ValueError):
            MappedBuffer.attach(spec)
