"""Sharded store + scatter-gather execution (``DiscoveryEngine(shards=N)``).

The load-bearing invariant: for ExS and exact-index ANNS, a sharded
engine ranks exactly what the unsharded engine ranks — same relation
order, same scores to within float tolerance — for fresh indexes AND
after any sequence of add/update/remove deltas.  CTS makes no such
promise (it clusters per shard); its sharded path only has to answer
sensibly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscoveryEngine, ShardMap, ShardedStore
from repro.core.semimg import FederationEmbeddings, build_relation_embedding
from repro.core.sharding import ShardedANNSearch, make_sharded_method
from repro.datamodel.relation import Federation, Relation
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder
from repro.errors import ConfigurationError

# Engines here use the default float32 storage dtype: ExS scores stay
# bitwise identical across shard layouts (GEMM rows are independent),
# but ANNS's exact rescore runs one float32 GEMM per candidate set and
# BLAS picks different kernels for different matrix shapes, so shard-
# local rescores drift from the unsharded ones by ~1e-9..1e-7.  At
# float64 (dtype=numpy.float64) the old 1e-9 bound holds — pinned by
# the fused-kernel property tests.
SCORE_TOL = 2e-5

TOPICS = [
    ["vaccine", "dose", "immunity", "booster", "trial"],
    ["league", "striker", "goal", "stadium", "referee"],
    ["gdp", "inflation", "export", "tariff", "budget"],
    ["galaxy", "nebula", "quasar", "orbit", "comet"],
    ["sonata", "violin", "tempo", "chord", "opera"],
    ["glacier", "monsoon", "drought", "humidity", "frost"],
    ["enzyme", "protein", "genome", "ribosome", "cell"],
    ["harbor", "cargo", "freight", "vessel", "anchor"],
]

QUERIES = ["vaccine booster trial", "league stadium", "gdp export", "quasar orbit"]


def make_relation(slot: int, version: int = 0) -> Relation:
    words = TOPICS[slot % len(TOPICS)]
    tag = f"v{version}"
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure", "Year"],
        [
            [f"{words[r % len(words)]} {tag}", str(100 * slot + r), str(2018 + version)]
            for r in range(3 + slot % 2)
        ],
        caption=f"{words[0]} {words[1]} table {tag}",
    )


def qualified(slot: int) -> str:
    return f"rel{slot}/rel{slot}"


def make_engine(shards: int = 1) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        method_params={
            # Exact index + exhaustive budget: ANNS candidate sets are
            # then deterministic, so sharded == unsharded is testable
            # bit-for-bit.  HNSW stays approximate per shard.
            "anns": {"index_kind": "exact", "n_candidates": 10_000},
        },
        shards=shards,
    )


def federation(slots) -> Federation:
    return Federation.from_relations([make_relation(s) for s in slots])


def assert_same_rankings(a: DiscoveryEngine, b: DiscoveryEngine, method: str) -> None:
    for query in QUERIES:
        ra = a.search(query, method=method, k=100, h=-1.0)
        rb = b.search(query, method=method, k=100, h=-1.0)
        assert ra.relation_ids() == rb.relation_ids(), (
            f"{method} ranking diverged for {query!r}"
        )
        for ma, mb in zip(ra.matches, rb.matches):
            assert ma.score == pytest.approx(mb.score, abs=SCORE_TOL)


# -- ShardMap -------------------------------------------------------------


class TestShardMap:
    def test_deterministic_across_instances(self):
        ids = [f"ds{i}/rel{i}" for i in range(50)]
        a = ShardMap(4, seed=7)
        b = ShardMap(4, seed=7)
        assert [a.shard_of(r) for r in ids] == [b.shard_of(r) for r in ids]

    def test_seed_changes_placement(self):
        ids = [f"ds{i}/rel{i}" for i in range(200)]
        a = ShardMap(4, seed=0)
        b = ShardMap(4, seed=1)
        assert [a.shard_of(r) for r in ids] != [b.shard_of(r) for r in ids]

    def test_all_shards_in_range_and_used(self):
        shard_map = ShardMap(4)
        shards = {shard_map.shard_of(f"ds{i}/rel{i}") for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_rendezvous_stability_under_growth(self):
        """Adding a shard only moves relations ONTO the new shard."""
        ids = [f"ds{i}/rel{i}" for i in range(300)]
        before = ShardMap(4)
        after = ShardMap(5)
        moved = 0
        for relation_id in ids:
            old, new = before.shard_of(relation_id), after.shard_of(relation_id)
            if old != new:
                assert new == 4, f"{relation_id} moved between surviving shards"
                moved += 1
        assert 0 < moved < len(ids)

    def test_partition_groups_and_preserves_order(self):
        shard_map = ShardMap(3)
        ids = [f"ds{i}/rel{i}" for i in range(30)]
        parts = shard_map.partition(ids)
        assert sorted(x for part in parts for x in part) == sorted(ids)
        for shard, part in enumerate(parts):
            assert all(shard_map.shard_of(r) == shard for r in part)
            assert part == [r for r in ids if shard_map.shard_of(r) == shard]

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(1)
        assert {shard_map.shard_of(f"r{i}") for i in range(20)} == {0}

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0)


# -- ShardedStore ---------------------------------------------------------


def build_store(slots) -> FederationEmbeddings:
    encoder = CachingEncoder(SemanticHashEncoder(dim=48))
    relations = [
        build_relation_embedding(qualified(s), make_relation(s), encoder)
        for s in slots
    ]
    return FederationEmbeddings(relations=relations, encoder=encoder)


class TestShardedStore:
    def test_partition_covers_store_without_copying(self):
        store = build_store(range(8))
        sharded = ShardedStore(store, ShardMap(3))
        assert sum(sharded.shard_sizes()) == store.n_relations
        by_id = {r.relation_id: r for r in store.relations}
        for shard in sharded.shards:
            for relation in shard.relations:
                # Shared objects, not re-embedded copies.
                assert relation is by_id[relation.relation_id]

    def test_route_touches_owning_shards_only(self):
        store = build_store(range(8))
        sharded = ShardedStore(store, ShardMap(4))
        embedding = build_relation_embedding(
            qualified(9), make_relation(9), store.encoder
        )
        routed = sharded.route([embedding], [], [qualified(3)])
        owner_new = sharded.shard_map.shard_of(qualified(9))
        owner_old = sharded.shard_map.shard_of(qualified(3))
        assert set(routed) == {owner_new, owner_old}
        assert routed[owner_new][0] == [embedding]
        assert routed[owner_old][2] == [qualified(3)]

    def test_apply_delta_mutates_owning_shard_stores(self):
        store = build_store(range(6))
        sharded = ShardedStore(store, ShardMap(3))
        embedding = build_relation_embedding(
            qualified(7), make_relation(7), store.encoder
        )
        sharded.apply_delta([embedding], [], [qualified(1)])
        owner = sharded.shard_map.shard_of(qualified(7))
        assert qualified(7) in sharded.shards[owner]
        gone = sharded.shard_map.shard_of(qualified(1))
        assert qualified(1) not in sharded.shards[gone]
        assert sum(sharded.shard_sizes()) == 6

    def test_shard_store_may_drain_empty(self):
        store = build_store(range(3))
        sharded = ShardedStore(store, ShardMap(5))
        # Some shard owns exactly one relation; removing it must not raise.
        sizes = sharded.shard_sizes()
        assert 0 in sizes  # 3 relations over 5 shards leaves empties
        for shard in sharded.shards:
            for relation in list(shard.relations):
                shard.remove_relation(relation.relation_id)
            assert shard.n_relations == 0


# -- engine-level equivalence ---------------------------------------------


class TestShardedEngineEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    @pytest.mark.parametrize("method", ["exs", "anns"])
    def test_fresh_index_matches_unsharded(self, shards, method):
        fed = federation(range(8))
        base = make_engine().index(fed)
        sharded = make_engine(shards=shards).index(fed)
        assert_same_rankings(base, sharded, method)

    @pytest.mark.parametrize("method", ["exs", "anns"])
    def test_batch_matches_unsharded_and_workers_agree(self, method):
        fed = federation(range(8))
        base = make_engine().index(fed)
        sharded = make_engine(shards=3).index(fed)
        want = base.search_batch(QUERIES, method=method, k=100, h=-1.0)
        sequential = sharded.search_batch(QUERIES, method=method, k=100, h=-1.0)
        parallel = sharded.search_batch(
            QUERIES, method=method, k=100, h=-1.0, workers=4
        )
        for w, s, p in zip(want, sequential, parallel):
            assert w.relation_ids() == s.relation_ids() == p.relation_ids()
            for mw, ms, mp in zip(w.matches, s.matches, p.matches):
                assert ms.score == pytest.approx(mw.score, abs=SCORE_TOL)
                assert mp.score == pytest.approx(mw.score, abs=SCORE_TOL)

    def test_default_budget_truncation_matches(self):
        """With the auto budget (256 for small corpora) the distributed
        top-k re-cut across shards must still equal the unsharded cut."""
        fed = federation(range(40))
        params = {"anns": {"index_kind": "exact"}}  # auto budget
        base = DiscoveryEngine(dim=48, method_params=params).index(fed)
        sharded = DiscoveryEngine(dim=48, method_params=params, shards=4).index(fed)
        for query in QUERIES:
            a = base.search(query, method="anns", k=100, h=-1.0)
            b = sharded.search(query, method="anns", k=100, h=-1.0)
            assert a.relation_ids() == b.relation_ids()
            for ma, mb in zip(a.matches, b.matches):
                assert ma.score == pytest.approx(mb.score, abs=SCORE_TOL)

    def test_cts_sharded_answers(self):
        sharded = DiscoveryEngine(
            dim=48,
            method_params={
                "cts": {"min_cluster_size": 4, "umap_neighbors": 5, "umap_epochs": 30}
            },
            shards=3,
        ).index(federation(range(8)))
        result = sharded.search("vaccine booster trial", method="cts", k=10, h=-1.0)
        assert result.relation_ids()
        assert qualified(0) in result.relation_ids()

    def test_search_all_methods_on_sharded_engine(self):
        sharded = make_engine(shards=3).index(federation(range(8)))
        results = sharded.search_all_methods("vaccine booster trial", k=5, h=-1.0)
        assert set(results) == {"exs", "anns", "cts"}
        assert all(r.matches for r in results.values())

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            DiscoveryEngine(dim=48, shards=0)


# -- hypothesis: sharded delta sequences == unsharded ---------------------


op_steps = st.lists(
    st.tuples(st.sampled_from(["add", "update", "remove"]), st.integers(0, 7)),
    min_size=1,
    max_size=8,
)


@settings(max_examples=8, deadline=None)
@given(steps=op_steps, shards=st.sampled_from([2, 5]))
def test_sharded_delta_sequences_match_unsharded(steps, shards):
    current: dict[int, Relation] = {i: make_relation(i) for i in range(4)}
    versions: dict[int, int] = {i: 0 for i in range(4)}
    fed = Federation.from_relations([current[i] for i in sorted(current)])
    base = make_engine().index(fed)
    sharded = make_engine(shards=shards).index(fed)
    for engine in (base, sharded):
        engine.method("exs")
        engine.method("anns")

    for op, slot in steps:
        # Normalize invalid draws instead of discarding the example.
        if op == "add" and slot in current:
            op = "update"
        elif op in ("update", "remove") and slot not in current:
            op = "add"
        if op == "remove" and len(current) == 1:
            op = "update"

        if op == "add":
            versions[slot] = versions.get(slot, -1) + 1
            current[slot] = make_relation(slot, versions[slot])
            for engine in (base, sharded):
                engine.add_relations({qualified(slot): current[slot]})
        elif op == "update":
            versions[slot] += 1
            current[slot] = make_relation(slot, versions[slot])
            for engine in (base, sharded):
                engine.update_relations({qualified(slot): current[slot]})
        else:
            del current[slot]
            for engine in (base, sharded):
                engine.remove_relations([qualified(slot)])

    assert_same_rankings(base, sharded, "exs")
    assert_same_rankings(base, sharded, "anns")


# -- empty shards and shard lifecycle -------------------------------------


class TestEmptyShards:
    def test_more_shards_than_relations(self):
        fed = federation(range(3))
        base = make_engine().index(fed)
        sharded = make_engine(shards=5).index(fed)
        assert_same_rankings(base, sharded, "exs")
        assert_same_rankings(base, sharded, "anns")

    def test_delta_drains_and_repopulates_a_shard(self):
        base = make_engine().index(federation(range(3)))
        sharded = make_engine(shards=5).index(federation(range(3)))
        for engine in (base, sharded):
            engine.method("exs")
            engine.method("anns")
        # Retire one relation (its shard may drain), then bring in new
        # ones (some land on previously empty shards).
        for engine in (base, sharded):
            engine.remove_relations([qualified(1)])
            engine.add_relations(
                {qualified(5): make_relation(5), qualified(6): make_relation(6)}
            )
        assert_same_rankings(base, sharded, "exs")
        assert_same_rankings(base, sharded, "anns")

    def test_drained_shard_drops_its_method(self):
        sharded = make_engine(shards=5).index(federation(range(3)))
        method = sharded.method("exs")
        live_before = sum(m is not None for m in method.shard_methods)
        # Remove relations until one shard has nothing left.
        sharded.remove_relations([qualified(1), qualified(2)])
        live_after = sum(m is not None for m in method.shard_methods)
        assert live_after <= live_before
        assert sum(sharded._sharded.shard_sizes()) == 1


# -- observability --------------------------------------------------------


class TestShardObservability:
    def test_per_shard_stage_timers_and_merge(self):
        sharded = make_engine(shards=3).index(federation(range(8)))
        sharded.search("vaccine booster trial", method="exs", k=5, h=-1.0)
        snap = sharded.metrics.snapshot()
        shard_scans = [
            name
            for name in snap["stages"]
            if name.startswith("exs.shard") and name.endswith(".scan")
        ]
        assert shard_scans, f"no per-shard scan timers in {sorted(snap['stages'])}"
        assert "exs.merge" in snap["stages"]
        assert snap["stages"]["exs.merge"]["count"] >= 1

    def test_shard_size_gauges_track_deltas(self):
        sharded = make_engine(shards=3).index(federation(range(8)))
        snap = sharded.metrics.snapshot()
        sizes = {
            name: value
            for name, value in snap["gauges"].items()
            if name.startswith("engine.shard_sizes.")
        }
        assert len(sizes) == 3
        assert sum(sizes.values()) == 8
        sharded.method("exs")
        sharded.remove_relations([qualified(0)])
        snap = sharded.metrics.snapshot()
        sizes = {
            name: value
            for name, value in snap["gauges"].items()
            if name.startswith("engine.shard_sizes.")
        }
        assert sum(sizes.values()) == 7


# -- construction guards --------------------------------------------------


class TestShardedMethodConstruction:
    def test_factory_dispatch(self):
        store = build_store(range(6))
        sharded_store = ShardedStore(store, ShardMap(2))
        from repro.core.anns import ANNSearch
        from repro.core.exhaustive import ExhaustiveSearch

        anns = make_sharded_method(
            lambda: ANNSearch(index_kind="exact"), sharded_store
        )
        assert isinstance(anns, ShardedANNSearch)
        exs = make_sharded_method(ExhaustiveSearch, sharded_store)
        assert not isinstance(exs, ShardedANNSearch)
        assert exs.name == "exs"
        assert anns.name == "anns"

    def test_sharded_anns_requires_anns_factory(self):
        store = build_store(range(4))
        sharded_store = ShardedStore(store, ShardMap(2))
        from repro.core.exhaustive import ExhaustiveSearch

        with pytest.raises(ConfigurationError):
            ShardedANNSearch(ExhaustiveSearch, sharded_store)
