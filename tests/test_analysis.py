"""repro.analysis: framework, the five rules, the CLI and the clean-tree gate.

Each rule has a known-bad fixture under ``tests/data/lint_fixtures/``
whose exact rule ids and line numbers are asserted here; the clean-tree
tests are the same gate CI runs (`python -m repro.analysis src/`).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Analyzer
from repro.analysis.cli import main as lint_main
from repro.analysis.framework import parse_suppressions
from repro.obs import vocabulary

HERE = Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
FIXTURES = HERE / "data" / "lint_fixtures"
SRC = REPO_ROOT / "src"


def check_fixture(name: str, virtual_path: str | None = None):
    """Lint one fixture, optionally under a virtual (path-scoped) name."""
    text = (FIXTURES / name).read_text(encoding="utf-8")
    path = virtual_path or f"tests/data/lint_fixtures/{name}"
    return Analyzer().check_source(text, path)


class TestRuleFixtures:
    def test_rl001_lock_discipline(self):
        report = check_fixture("rl001_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [("RL001", 18), ("RL001", 21), ("RL001", 23), ("RL001", 30)]
        assert "_store" in report.findings[0].message
        assert "_methods.clear()" in report.findings[1].message
        assert "search" in report.findings[2].message
        # Async serving entry points obey the same discipline (PR 6's
        # batch dispatch path is an async front end over the RWLock).
        assert "search_async" in report.findings[3].message

    def test_rl002_metrics_vocabulary(self):
        report = check_fixture("rl002_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [
            ("RL002", 11),
            ("RL002", 12),
            ("RL002", 13),
            ("RL002", 16),
            ("RL002", 17),
        ]
        assert "'engine.nope'" in report.findings[0].message
        # The f-string interpolation renders as a wildcard marker.
        assert ".sacn" in report.findings[1].message
        # Known gauge name recorded through .counter() is kind drift.
        assert "'engine.generation'" in report.findings[2].message
        # The cache.* family is vocabulary-checked like any other.
        assert "'cache.nearhits'" in report.findings[3].message
        # cache.probe_ms is a histogram; counting it is kind drift.
        assert "'cache.probe_ms'" in report.findings[4].message

    def test_rl003_dtype_discipline(self):
        report = check_fixture("rl003_bad.py", "src/repro/linalg/rl003_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [("RL003", 10), ("RL003", 11), ("RL003", 12), ("RL003", 13)]

    def test_rl003_only_fires_inside_kernel_packages(self):
        # The same source outside repro.linalg/ann/vectordb/exhaustive
        # is out of scope — dtype discipline is a kernel contract.
        report = check_fixture("rl003_bad.py")
        assert report.findings == ()

    def test_rl004_concurrency_hygiene(self):
        report = check_fixture("rl004_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [("RL004", 12), ("RL004", 16), ("RL004", 21), ("RL004", 30)]
        # The query cache's read path is lock-free by design; a raw lock
        # creeping in beside the lifecycle RWLock is a regression.
        assert "BadResultCache" in report.findings[3].message

    def test_rl005_executor_construction(self):
        report = check_fixture("rl005_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [("RL005", 11), ("RL005", 16)]
        assert "ThreadPoolExecutor" in report.findings[0].message
        assert "ProcessPoolExecutor" in report.findings[1].message

    def test_rl005_home_package_is_exempt(self):
        # The same source under repro/exec/ is the one legitimate home.
        report = check_fixture("rl005_bad.py", "src/repro/exec/rl005_bad.py")
        assert report.findings == ()

    def test_rl006_raw_array_persistence(self):
        report = check_fixture("rl006_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [
            ("RL006", 10),
            ("RL006", 11),
            ("RL006", 15),
            ("RL006", 16),
        ]
        assert "np.save()" in report.findings[0].message
        assert "np.memmap()" in report.findings[3].message

    def test_rl006_home_package_is_exempt(self):
        # The same source under repro/storage/ is the one legitimate home.
        report = check_fixture("rl006_bad.py", "src/repro/storage/rl006_bad.py")
        assert report.findings == ()

    def test_rl007_interprocedural_lock_discipline(self):
        report = check_fixture("rl007_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [
            ("RL007", 25),
            ("RL007", 29),
            ("RL007", 32),
            ("RL007", 53),
        ]
        assert "no lock" in report.findings[0].message
        # Holding only the reader side is called out as such.
        assert "only the read side" in report.findings[1].message
        # The propagation suggestion names the annotate-the-caller fix.
        assert "@requires_lock" in report.findings[0].message
        # Bare module-local calls resolve too.
        assert "rebuild_index" in report.findings[3].message

    def test_rl008_event_loop_hygiene(self):
        report = check_fixture("rl008_bad.py", "src/repro/serving/rl008_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [("RL008", 14), ("RL008", 15), ("RL008", 20)]
        assert "cosine_similarity()" in report.findings[0].message
        assert "time.sleep()" in report.findings[1].message
        # Transitive paths anchor at the call site inside the root and
        # spell out the chain.
        assert "read_snapshot -> _slurp -> open()" in report.findings[2].message

    def test_rl008_only_roots_in_serving(self):
        # The same source outside repro/serving/ is out of scope.
        report = check_fixture("rl008_bad.py")
        assert report.findings == ()

    def test_rl009_resource_lifecycle(self):
        report = check_fixture("rl009_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [
            ("RL009", 12),
            ("RL009", 18),
            ("RL009", 25),
            ("RL009", 29),
        ]
        assert "may never be released" in report.findings[0].message
        # Releases on the happy path only: flagged for the except edge.
        assert "exception escapes" in report.findings[1].message
        assert "discarded immediately" in report.findings[2].message
        # SegmentWriter is exempt on exceptional paths but not on
        # normal fall-through.
        assert "writer handle" in report.findings[3].message

    def test_rl010_generation_monotonicity(self):
        report = check_fixture("rl010_bad.py")
        got = [(f.rule_id, f.line) for f in report.findings]
        assert got == [
            ("RL010", 18),
            ("RL010", 22),
            ("RL010", 26),
            ("RL010", 29),
            ("RL010", 29),
        ]
        assert "outside the writer lock" in report.findings[0].message
        assert "unrelated value" in report.findings[1].message
        # An unlocked overwrite earns both findings on one line.
        assert "outside the writer lock" in report.findings[3].message
        assert "unrelated value" in report.findings[4].message

    def test_syntax_error_is_a_finding_not_a_crash(self):
        report = Analyzer().check_source("def broken(:\n", "x.py")
        assert [f.rule_id for f in report.findings] == ["RL000"]


class TestSuppressions:
    def test_same_line_suppression(self):
        text = (FIXTURES / "rl004_bad.py").read_text(encoding="utf-8")
        text = text.replace(
            "cache = {}  # line 12: mutable class-level default",
            "cache = {}  # repro-lint: disable=RL004 -- fixture",
        )
        report = Analyzer().check_source(text, "rl004_bad.py")
        assert [f.line for f in report.findings] == [16, 21, 30]
        assert report.n_suppressed == 1

    def test_standalone_comment_covers_next_line(self):
        text = (
            "class C:\n"
            "    # repro-lint: disable=RL004 -- fixture\n"
            "    cache = {}\n"
        )
        report = Analyzer().check_source(text, "x.py")
        assert report.findings == ()
        assert report.n_suppressed == 1

    def test_disable_file(self):
        text = "# repro-lint: disable-file=RL004 -- fixture\n" + (
            FIXTURES / "rl004_bad.py"
        ).read_text(encoding="utf-8")
        report = Analyzer().check_source(text, "rl004_bad.py")
        assert report.findings == ()
        assert report.n_suppressed == 4

    def test_other_rules_stay_active(self):
        text = (FIXTURES / "rl004_bad.py").read_text(encoding="utf-8")
        report = Analyzer().check_source(
            "# repro-lint: disable-file=RL001 -- wrong rule\n" + text,
            "rl004_bad.py",
        )
        assert len(report.findings) == 4

    def test_directive_inside_string_is_not_a_directive(self):
        text = 'MSG = "# repro-lint: disable-file=RL004"\n\n\nclass C:\n    cache = {}\n'
        report = Analyzer().check_source(text, "x.py")
        assert [f.rule_id for f in report.findings] == ["RL004"]

    def test_parse_suppressions_reads_rule_lists(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=RL001,RL003 -- why\n")
        assert sup.by_line[1] == {"RL001", "RL003"}
        assert sup.file_wide == set()


class TestVocabulary:
    def test_literal_names(self):
        assert vocabulary.matches("engine.queries", call_kind="counter")
        assert vocabulary.matches("vectordb.scan", call_kind="histogram")
        assert vocabulary.matches("cache.near_hits", call_kind="counter")
        assert vocabulary.matches("cache.probe_ms", call_kind="timer")
        assert vocabulary.matches("encoder_cache.hits", call_kind="counter")
        assert not vocabulary.matches("cache.bytes", call_kind="counter")

    def test_kind_mismatch_fails(self):
        assert not vocabulary.matches("engine.queries", call_kind="gauge")
        assert not vocabulary.matches("engine.generation", call_kind="counter")

    def test_timer_records_histograms(self):
        assert vocabulary.matches("exs.scan", call_kind="timer")

    def test_placeholders_accept_values_and_wildcards(self):
        assert vocabulary.matches("anns.encode", call_kind="histogram")
        assert vocabulary.matches(vocabulary.WILDCARD + ".encode", call_kind="histogram")
        assert not vocabulary.matches(vocabulary.WILDCARD + ".sacn", call_kind="histogram")

    def test_markdown_table_shape(self):
        table = vocabulary.markdown_table()
        lines = table.strip().splitlines()
        assert lines[0] == "| Metric | Kind | Meaning |"
        assert len(lines) == len(vocabulary.VOCABULARY) + 2
        assert any("`engine.queries`" in line for line in lines)


class TestCleanTree:
    """The merge gate: the linter reports nothing on the shipped tree."""

    def test_src_is_clean(self):
        report = Analyzer().check_paths([SRC])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"unsuppressed lint findings:\n{formatted}"
        assert report.n_files > 80

    def test_benchmarks_are_clean(self):
        report = Analyzer().check_paths([REPO_ROOT / "benchmarks"])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"unsuppressed lint findings:\n{formatted}"
        assert report.n_files > 10

    def test_cli_exit_zero_on_src(self, capsys):
        assert lint_main([str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_no_suppression_is_unused(self, capsys):
        # Satellite of the audit: a directive that silences nothing is
        # dead weight and must be removed, not carried along.
        assert lint_main([str(SRC), str(REPO_ROOT / "benchmarks"), "--list-suppressions"]) == 0
        out = capsys.readouterr().out
        assert ", 0 unused" in out.strip().splitlines()[-1]
        assert "UNUSED" not in out


class TestCli:
    def test_findings_exit_one_text(self, capsys):
        code = lint_main([str(FIXTURES / "rl004_bad.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL004" in out
        assert "4 finding(s)" in out

    def test_json_format(self, capsys):
        code = lint_main([str(FIXTURES / "rl004_bad.py"), "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["n_findings"] == 4
        assert payload["ok"] is False
        assert {f["rule"] for f in payload["findings"]} == {"RL004"}
        assert all({"path", "line", "col", "message"} <= set(f) for f in payload["findings"])

    def test_sarif_format(self, capsys):
        code = lint_main([str(FIXTURES / "rl004_bad.py"), "--format=sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "RL004" in rule_ids
        assert len(run["results"]) == 4
        result = run["results"][0]
        assert result["ruleId"] == "RL004"
        assert rule_ids[result["ruleIndex"]] == "RL004"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_empty_report_still_describes_the_tool(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(clean), "--format=sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (run,) = doc["runs"]
        assert run["results"] == []
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RL001", "RL007", "RL008", "RL009", "RL010"} <= rule_ids

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
            "RL010",
        ):
            assert rule_id in out

    def test_rules_flag_filters(self, capsys):
        # The RL004 fixture is clean under every other rule.
        code = lint_main([str(FIXTURES / "rl004_bad.py"), "--rules", "RL001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_unknown_rule_id_exits_two(self, capsys):
        assert lint_main(["--rules", "RL999", str(FIXTURES)]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_stats_flag(self, capsys):
        lint_main([str(FIXTURES / "rl004_bad.py"), "--stats"])
        err = capsys.readouterr().err
        assert "1 file(s)" in err
        assert "call-graph" in err

    def test_list_suppressions_reports_usage(self, capsys, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "class C:\n"
            "    # repro-lint: disable=RL004 -- fixture default\n"
            "    cache = {}\n"
            "    # repro-lint: disable=RL001 -- nothing here violates RL001\n"
            "    x = 1\n",
            encoding="utf-8",
        )
        assert lint_main([str(target), "--list-suppressions"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert any("used" in line and "RL004" in line for line in lines)
        assert any("UNUSED" in line and "RL001" in line for line in lines)
        assert lines[-1] == "2 suppression(s), 1 unused"

    def test_cache_round_trip(self, capsys, tmp_path):
        cache_file = tmp_path / "lint-cache.json"
        fixture = str(FIXTURES / "rl004_bad.py")
        code = lint_main([fixture, "--cache", str(cache_file), "--stats"])
        cold = capsys.readouterr()
        assert code == 1
        assert cache_file.exists()
        assert "1 miss(es)" in cold.err
        code = lint_main([fixture, "--cache", str(cache_file), "--stats"])
        warm = capsys.readouterr()
        assert code == 1
        assert "1 hit(s)" in warm.err
        # Warm findings match cold findings exactly.
        assert warm.out == cold.out

    def test_cache_respects_live_suppressions(self, tmp_path, capsys):
        # Findings are cached pre-suppression and the directive filter
        # runs on the live text: adding a disable comment flips the
        # verdict even with a populated cache in play.
        cache_file = tmp_path / "lint-cache.json"
        target = tmp_path / "module.py"
        body = "class C:\n    cache = {}\n"
        target.write_text(body, encoding="utf-8")
        assert lint_main([str(target), "--cache", str(cache_file)]) == 1
        capsys.readouterr()
        target.write_text(
            "# repro-lint: disable-file=RL004 -- testing live suppressions\n" + body,
            encoding="utf-8",
        )
        assert lint_main([str(target), "--cache", str(cache_file)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_path_exits_two(self, capsys):
        assert lint_main(["no_such_thing.txt"]) == 2
        assert "repro-lint" in capsys.readouterr().err


class TestReadmeSync:
    def test_metrics_table_matches_vocabulary(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        begin, end = "<!-- metrics-table:begin -->", "<!-- metrics-table:end -->"
        assert begin in readme and end in readme, "README metrics-table markers missing"
        block = readme.split(begin, 1)[1].split(end, 1)[0].strip()
        assert block == vocabulary.markdown_table().strip(), (
            "README metrics table is out of sync with repro/obs/vocabulary.py — "
            "regenerate it with vocabulary.markdown_table()"
        )
