"""Tests for the relational data model and loaders."""

import json

import pytest

from repro.datamodel import (
    Attribute,
    Dataset,
    Federation,
    Relation,
    Row,
    relation_from_csv,
    relation_from_json,
)
from repro.errors import ConfigurationError, DataGenerationError


class TestRow:
    def test_attributes(self):
        row = Row(["a", "b"], ["1", "2"])
        assert list(row.attributes()) == [Attribute("a", "1"), Attribute("b", "2")]
        assert row.cardinality == 2

    def test_getitem_by_name(self):
        row = Row(["a", "b"], ["1", "2"])
        assert row["b"] == "2"
        with pytest.raises(KeyError):
            row["c"]

    def test_values_coerced_to_str(self):
        row = Row(["n"], [42])
        assert row.values == ("42",)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Row(["a"], ["1", "2"])

    def test_equality_and_hash(self):
        a = Row(["x"], ["1"])
        b = Row(["x"], ["1"])
        assert a == b and hash(a) == hash(b)
        assert a != Row(["x"], ["2"])


class TestRelation:
    def test_construction_and_counts(self, tiny_relations):
        rel = tiny_relations[0]
        assert rel.num_rows == 3
        assert rel.num_columns == 3
        assert rel.num_cells == 9

    def test_column(self, tiny_relations):
        assert tiny_relations[0].column("Country") == ["germany", "france", "spain"]
        with pytest.raises(KeyError):
            tiny_relations[0].column("Nope")

    def test_values_row_major(self):
        rel = Relation("r", ["a", "b"], [["1", "2"], ["3", "4"]])
        assert rel.values() == ["1", "2", "3", "4"]

    def test_attributes_iteration(self):
        rel = Relation("r", ["a"], [["x"], ["y"]])
        assert [attr.value for attr in rel.attributes()] == ["x", "y"]

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            Relation("r", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Relation("", ["a"])

    def test_row_schema_enforced(self):
        rel = Relation("r", ["a", "b"])
        with pytest.raises(ConfigurationError):
            rel.add_row(["only one"])

    def test_text_fields(self):
        rel = Relation("r", ["a"], caption="hello", metadata={"page": "World"})
        fields = rel.text_fields()
        assert fields["caption"] == "hello"
        assert fields["schema"] == "a"
        assert fields["page"] == "World"


class TestDatasetFederation:
    def test_dataset_unique_relations(self, tiny_relations):
        ds = Dataset("d", tiny_relations[:1])
        with pytest.raises(ConfigurationError):
            ds.add_relation(tiny_relations[0])

    def test_federation_qualified_ids(self, tiny_federation):
        ids = [rid for rid, _ in tiny_federation.relations()]
        assert "vaccines/vaccines" in ids
        assert tiny_federation.num_relations == 3

    def test_federation_lookup(self, tiny_federation):
        rel = tiny_federation.relation("vaccines/vaccines")
        assert rel.name == "vaccines"

    def test_from_relations(self, tiny_relations):
        fed = Federation.from_relations(tiny_relations)
        assert len(fed) == 3

    def test_duplicate_dataset_rejected(self, tiny_relations):
        fed = Federation.from_relations(tiny_relations)
        with pytest.raises(ConfigurationError):
            fed.add_dataset(Dataset("vaccines"))


class TestLoaders:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        rel = relation_from_csv(path)
        assert rel.name == "data"
        assert rel.schema == ("a", "b")
        assert rel.num_rows == 2

    def test_csv_short_rows_padded(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("a,b\n1\n")
        rel = relation_from_csv(path)
        assert rel.rows[0].values == ("1", "")

    def test_csv_long_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a\n1,2\n")
        with pytest.raises(DataGenerationError):
            relation_from_csv(path)

    def test_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataGenerationError):
            relation_from_csv(path)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "rel.json"
        path.write_text(
            json.dumps(
                {
                    "name": "t",
                    "schema": ["x"],
                    "rows": [["1"]],
                    "caption": "cap",
                    "metadata": {"k": "v"},
                }
            )
        )
        rel = relation_from_json(path)
        assert rel.caption == "cap"
        assert rel.metadata == {"k": "v"}

    def test_json_missing_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "t"}))
        with pytest.raises(DataGenerationError):
            relation_from_json(path)
