"""Unit and property tests for repro.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.linalg import (
    KMeans,
    Metric,
    cosine_similarity,
    euclidean_distance,
    normalize_rows,
    pairwise_distance,
    pairwise_similarity,
    similarity,
    top_k_indices,
)

finite_rows = arrays(
    np.float64,
    st.tuples(st.integers(2, 6), st.just(4)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestNormalizeRows:
    def test_unit_norms(self, rng):
        m = normalize_rows(rng.standard_normal((5, 8)))
        np.testing.assert_allclose(np.linalg.norm(m, axis=1), 1.0)

    def test_zero_row_unchanged(self):
        m = normalize_rows(np.array([[0.0, 0.0], [3.0, 4.0]]))
        np.testing.assert_allclose(m[0], [0.0, 0.0])
        np.testing.assert_allclose(m[1], [0.6, 0.8])

    def test_1d_input(self):
        v = normalize_rows(np.array([3.0, 4.0]))
        np.testing.assert_allclose(v, [0.6, 0.8])


class TestSimilarities:
    def test_cosine_self_similarity(self, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(np.diag(cosine_similarity(x, x)), 1.0)

    def test_cosine_bounded(self, rng):
        a, b = rng.standard_normal((5, 6)), rng.standard_normal((7, 6))
        c = cosine_similarity(a, b)
        assert np.all(c <= 1 + 1e-12) and np.all(c >= -1 - 1e-12)

    def test_euclidean_matches_numpy(self, rng):
        a, b = rng.standard_normal((3, 5)), rng.standard_normal((4, 5))
        d = euclidean_distance(a, b)
        for i in range(3):
            for j in range(4):
                assert d[i, j] == pytest.approx(np.linalg.norm(a[i] - b[j]))

    def test_dimension_mismatch(self, rng):
        with pytest.raises(DimensionMismatchError):
            cosine_similarity(rng.standard_normal((2, 3)), rng.standard_normal((2, 4)))

    def test_similarity_scalar(self):
        assert similarity(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_similarity_rejects_matrices(self, rng):
        with pytest.raises(DimensionMismatchError):
            similarity(rng.standard_normal((2, 2)), rng.standard_normal(2))

    @pytest.mark.parametrize("metric", list(Metric))
    def test_pairwise_similarity_shape(self, metric, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((5, 4))
        assert pairwise_similarity(a, b, metric).shape == (3, 5)

    def test_euclidean_similarity_is_negated_distance(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((5, 4))
        np.testing.assert_allclose(
            pairwise_similarity(a, b, Metric.EUCLIDEAN),
            -euclidean_distance(a, b),
        )

    @given(finite_rows)
    @settings(max_examples=30)
    def test_distance_symmetry(self, x):
        # the expanded ||x||^2+||y||^2-2xy form cancels catastrophically
        # near zero, so tolerances reflect sqrt(float-eps) noise
        d = pairwise_distance(x, x, Metric.EUCLIDEAN)
        np.testing.assert_allclose(d, d.T, atol=1e-6)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)

    @property
    def higher_is_better(self):
        return None

    def test_metric_flags(self):
        assert Metric.COSINE.higher_is_better
        assert Metric.DOT.higher_is_better
        assert not Metric.EUCLIDEAN.higher_is_better


class TestTopK:
    def test_best_first(self):
        scores = np.array([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 2])

    def test_smallest(self):
        scores = np.array([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(top_k_indices(scores, 2, largest=False), [0, 2])

    def test_k_clamped(self):
        assert len(top_k_indices(np.array([1.0, 2.0]), 10)) == 2

    def test_k_zero(self):
        assert len(top_k_indices(np.array([1.0]), 0)) == 0

    def test_tie_break_by_index(self):
        scores = np.array([0.5, 0.5, 0.5])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [0, 1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 2)), 1)

    @given(
        arrays(np.float64, st.integers(1, 30), elements=st.floats(-100, 100, allow_nan=False)),
        st.integers(1, 10),
    )
    def test_matches_argsort(self, scores, k):
        got = top_k_indices(scores, k)
        expected_scores = np.sort(scores)[::-1][: min(k, len(scores))]
        np.testing.assert_allclose(scores[got], expected_scores)


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        points = np.vstack([c + rng.standard_normal((30, 2)) * 0.5 for c in centers])
        km = KMeans(n_clusters=3, seed=1).fit(points)
        labels = km.labels_
        # each block of 30 should be a single cluster
        for start in (0, 30, 60):
            assert len(set(labels[start : start + 30].tolist())) == 1

    def test_predict_matches_fit_labels(self, rng):
        points = rng.standard_normal((50, 3))
        km = KMeans(n_clusters=4).fit(points)
        np.testing.assert_array_equal(km.predict(points), km.labels_)

    def test_predict_single_point(self, rng):
        km = KMeans(n_clusters=2).fit(rng.standard_normal((10, 3)))
        assert km.predict(rng.standard_normal(3)) in (0, 1)

    def test_more_clusters_than_points(self):
        points = np.array([[0.0], [1.0], [2.0]])
        km = KMeans(n_clusters=10).fit(points)
        assert km.centroids_.shape[0] == 3

    def test_duplicate_points(self):
        points = np.ones((20, 2))
        km = KMeans(n_clusters=3, seed=0).fit(points)
        assert km.inertia_ == pytest.approx(0.0)

    def test_deterministic_given_seed(self, rng):
        points = rng.standard_normal((40, 4))
        a = KMeans(n_clusters=3, seed=5).fit(points)
        b = KMeans(n_clusters=3, seed=5).fit(points)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=0)
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=2, max_iter=0)
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=2).fit(np.zeros((0, 2)))

    def test_inertia_decreases_with_k(self, rng):
        points = rng.standard_normal((60, 2))
        inertias = [KMeans(n_clusters=k, seed=0).fit(points).inertia_ for k in (1, 4, 16)]
        assert inertias[0] >= inertias[1] >= inertias[2]
