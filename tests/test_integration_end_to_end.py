"""End-to-end integration tests across the whole stack.

These exercise the complete pipeline the way a downstream user would:
generate a corpus, index it, search with every method, evaluate against
the generated ground truth, persist and restore.
"""

import pytest

from repro.baselines import make_baseline
from repro.core import DiscoveryEngine
from repro.data import DatasetScale, generate_wikitables_corpus
from repro.data.queries import QueryCategory
from repro.eval import evaluate_method
from repro.eval.splits import train_test_split_pairs


@pytest.fixture(scope="module")
def corpus():
    return generate_wikitables_corpus(n_tables=80, pairs_target=800)


@pytest.fixture(scope="module")
def engine(corpus):
    eng = DiscoveryEngine(dim=128)
    eng.index(corpus.federation(DatasetScale.LARGE))
    return eng


class TestEndToEnd:
    @pytest.mark.parametrize("method", ["exs", "anns", "cts"])
    def test_methods_beat_random_ranking(self, corpus, engine, method):
        """Every semantic method must clearly beat a random ranking."""
        report = evaluate_method(engine.method(method), corpus.qrels, k=50)
        # random MAP on these qrels is ~ n_relevant/n_tables ~ 0.1-0.2
        assert report.map > 0.35, f"{method} MAP {report.map}"

    def test_topical_query_retrieves_its_topic(self, corpus, engine):
        spec = corpus.queries_of(QueryCategory.SHORT)[0]
        result = engine.search(spec.text, method="cts", k=5, h=-1.0)
        assert len(result) > 0
        top_topics = [
            corpus.table_facets[m.relation_id][0] for m in result.matches[:3]
        ]
        assert spec.topic in top_topics

    def test_methods_agree_on_top_results(self, corpus, engine):
        """The three methods rank over the same embeddings and should
        broadly agree on what is relevant."""
        spec = corpus.queries_of(QueryCategory.MODERATE)[0]
        tops = {}
        for method in ("exs", "anns", "cts"):
            result = engine.search(spec.text, method=method, k=10, h=-1.0)
            tops[method] = set(result.relation_ids())
        assert len(tops["exs"] & tops["anns"]) >= 3
        assert len(tops["exs"] & tops["cts"]) >= 3

    def test_score_scales_comparable(self, corpus, engine):
        """All three methods score on the cosine scale, so a shared
        threshold h is meaningful (the paper's match >= h semantics)."""
        spec = corpus.queries_of(QueryCategory.SHORT)[1]
        for method in ("exs", "anns", "cts"):
            result = engine.search(spec.text, method=method, k=5, h=-1.0)
            for match in result:
                assert -1.0 <= match.score <= 1.0

    def test_trained_baseline_pipeline(self, corpus, engine):
        train, test = train_test_split_pairs(corpus.qrels, seed=0)
        ws = make_baseline("ws")
        ws.index_federation(corpus.federation(DatasetScale.LARGE), engine.embeddings)
        ws.fit(train.pairs())
        report = evaluate_method(ws, test, k=50)
        assert 0.0 <= report.map <= 1.0

    def test_partition_quality_ordering(self, corpus):
        """Smaller partitions are easier (fewer distractors) — the
        paper's SD > MD > LD trend, allowing slack for noise."""
        maps = {}
        for scale in (DatasetScale.SMALL, DatasetScale.LARGE):
            eng = DiscoveryEngine(dim=128)
            eng.index(corpus.federation(scale))
            report = evaluate_method(
                eng.method("exs"), corpus.qrels_for(scale), k=50
            )
            maps[scale] = report.map
        assert maps[DatasetScale.SMALL] >= maps[DatasetScale.LARGE] - 0.1

    def test_semantic_beats_keyword_overlap(self, corpus, engine):
        """The core claim: semantic matching finds relevant tables that
        share no keywords with the query."""
        hits_without_overlap = 0
        for spec in corpus.queries_of(QueryCategory.SHORT)[:8]:
            result = engine.search(spec.text, method="exs", k=3, h=-1.0)
            judgments = corpus.qrels.judgments(spec.text)
            query_tokens = set(spec.text.lower().split())
            for match in result.matches:
                if judgments.grade(match.relation_id) > 0:
                    relation = corpus.federation(DatasetScale.LARGE).relation(
                        match.relation_id.split("/", 1)[1]
                        if "/" not in match.relation_id
                        else match.relation_id
                    )
                    table_tokens = {
                        t for v in relation.values() for t in v.lower().split()
                    }
                    table_tokens |= set(relation.caption.lower().split())
                    if not (query_tokens & table_tokens):
                        hits_without_overlap += 1
        assert hits_without_overlap >= 1

    def test_deterministic_rankings(self, corpus):
        """Same seed, same corpus => identical rankings."""
        spec = corpus.queries_of(QueryCategory.SHORT)[2]
        rankings = []
        for _ in range(2):
            eng = DiscoveryEngine(dim=96)
            eng.index(corpus.federation(DatasetScale.SMALL))
            rankings.append(eng.search(spec.text, method="cts", k=5, h=-1.0).relation_ids())
        assert rankings[0] == rankings[1]
