"""Shared fixtures: small corpora, engines and encoders reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import DiscoveryEngine
from repro.data.covid import covid_federation
from repro.datamodel.relation import Federation, Relation
from repro.embedding.semantic import SemanticHashEncoder


@pytest.fixture(scope="session")
def encoder64() -> SemanticHashEncoder:
    """A small shared encoder (64 dims keeps tests fast)."""
    return SemanticHashEncoder(dim=64)


@pytest.fixture(scope="session")
def tiny_relations() -> list[Relation]:
    """Three topically distinct relations plus captions."""
    return [
        Relation(
            "vaccines",
            ["Country", "Vaccine", "Year"],
            [
                ["germany", "comirnaty", "2021"],
                ["france", "vaxzevria", "2021"],
                ["spain", "coronavac", "2021"],
            ],
            caption="vaccination campaign europe",
        ),
        Relation(
            "football",
            ["Team", "Trophy", "Year"],
            [
                ["ajax", "league", "2021"],
                ["psv", "cup", "2020"],
            ],
            caption="football league results",
        ),
        Relation(
            "economy",
            ["Country", "GDP", "Year"],
            [
                ["germany", "3806", "2020"],
                ["france", "2603", "2020"],
            ],
            caption="gdp figures by country",
        ),
    ]


@pytest.fixture(scope="session")
def tiny_federation(tiny_relations) -> Federation:
    return Federation.from_relations(tiny_relations)


@pytest.fixture(scope="session")
def covid_fed() -> Federation:
    """The paper's Figure 1 federation with distractors."""
    return covid_federation()


@pytest.fixture(scope="session")
def indexed_engine(covid_fed) -> DiscoveryEngine:
    """An engine indexed over the COVID federation (shared: read-only)."""
    engine = DiscoveryEngine(
        dim=96,
        method_params={
            "cts": {"min_cluster_size": 4, "umap_neighbors": 5, "umap_epochs": 30},
            "anns": {"n_subvectors": 8, "n_centroids": 16},
        },
    )
    return engine.index(covid_fed)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
