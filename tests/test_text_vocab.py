"""Unit tests for repro.text.vocab."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.text.vocab import Vocabulary


def build():
    vocab = Vocabulary()
    vocab.add_document(["apple", "banana", "apple"])
    vocab.add_document(["banana", "cherry"])
    return vocab


class TestVocabulary:
    def test_ids_are_dense_and_stable(self):
        vocab = build()
        assert vocab.id_of("apple") == 0
        assert vocab.id_of("banana") == 1
        assert vocab.id_of("cherry") == 2
        assert vocab.token_of(1) == "banana"

    def test_unknown_token(self):
        assert build().id_of("durian") is None
        assert "durian" not in build()

    def test_frequencies(self):
        vocab = build()
        assert vocab.term_frequency("apple") == 2
        assert vocab.document_frequency("apple") == 1
        assert vocab.document_frequency("banana") == 2
        assert vocab.num_documents == 2
        assert vocab.total_tokens() == 5

    def test_idf_ordering(self):
        vocab = build()
        # rarer tokens have higher idf
        assert vocab.idf("cherry") > vocab.idf("banana")
        # idf stays positive even for ubiquitous tokens
        assert vocab.idf("banana") > 0

    def test_idf_of_unseen_token_is_maximal(self):
        vocab = build()
        assert vocab.idf("zzz") >= vocab.idf("cherry")

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a"], ["b", "a"]])
        assert len(vocab) == 2
        assert vocab.num_documents == 2

    def test_most_common(self):
        assert build().most_common(1) == [("apple", 2)] or build().most_common(1) == [("banana", 2)]

    def test_prune_by_frequency(self):
        pruned = build().prune(min_term_freq=2)
        assert "apple" in pruned and "banana" in pruned
        assert "cherry" not in pruned
        # ids re-densified
        assert sorted(pruned.id_of(t) for t in pruned) == list(range(len(pruned)))

    def test_prune_max_size(self):
        pruned = build().prune(max_size=1)
        assert len(pruned) == 1

    def test_prune_keeps_document_count(self):
        assert build().prune(min_term_freq=2).num_documents == 2

    @given(st.lists(st.lists(st.sampled_from("abcde"), max_size=10), max_size=10))
    def test_total_tokens_matches_input(self, docs):
        vocab = Vocabulary.from_documents(docs)
        assert vocab.total_tokens() == sum(len(d) for d in docs)

    @given(st.lists(st.lists(st.sampled_from("abcde"), max_size=8), min_size=1, max_size=8))
    def test_idf_definition(self, docs):
        vocab = Vocabulary.from_documents(docs)
        for token in vocab:
            expected = math.log((vocab.num_documents + 1) / (vocab.document_frequency(token) + 1)) + 1
            assert abs(vocab.idf(token) - expected) < 1e-12
