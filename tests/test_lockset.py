"""repro.sanitize.lockset: the Eraser-style race detector behind level 2.

Policy unit tests (eraser / publish / anylock) plus the regression the
sanitizer exists for: a *threaded* unlocked write that ``REPRO_SANITIZE=1``
cannot see (no unlucky interleaving required) and level 2 reports
deterministically.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import SanitizerError
from repro.sanitize import lockset


@pytest.fixture()
def armed():
    lockset.arm()
    yield
    lockset.disarm()


class Owner:
    pass


def _in_thread(fn):
    """Run ``fn`` in a worker thread; re-raise anything it raised."""
    box: list[BaseException] = []

    def run():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            box.append(exc)

    t = threading.Thread(target=run)
    t.start()
    t.join()
    if box:
        raise box[0]


class TestEraserPolicy:
    def test_single_thread_never_reports(self, armed):
        owner = Owner()
        for _ in range(10):
            lockset.write(owner, "field")  # exclusive to one thread: fine

    def test_common_lock_is_clean(self, armed):
        owner = Owner()
        lock = lockset.TrackedLock()

        def locked_write():
            with lock:
                lockset.write(owner, "field")

        locked_write()
        _in_thread(locked_write)
        locked_write()

    def test_empty_intersection_raises(self, armed):
        owner = Owner()
        l1, l2 = lockset.TrackedLock(), lockset.TrackedLock()
        with l1:
            lockset.write(owner, "field")  # first thread: deferred

        def write_under_l2():
            with l2:
                lockset.write(owner, "field")  # shared now; candidates={l2}

        _in_thread(write_under_l2)
        with pytest.raises(SanitizerError, match="lockset .* went empty"):
            with l1:
                lockset.write(owner, "field")  # {l2} & {l1} = {}

    def test_reads_alone_never_report(self, armed):
        # written_shared never becomes true: read-only sharing is fine
        # even with an empty candidate set.
        owner = Owner()
        lockset.read(owner, "field")
        _in_thread(lambda: lockset.read(owner, "field"))
        lockset.read(owner, "field")


class TestWeakerPolicies:
    def test_publish_allows_lockfree_reads(self, armed):
        owner = Owner()
        lockset.read(owner, "field", policy="publish")
        _in_thread(lambda: lockset.read(owner, "field", policy="publish"))
        lockset.read(owner, "field", policy="publish")

    def test_publish_requires_exclusive_writes(self, armed):
        owner = Owner()
        lockset.write(owner, "field", policy="publish")  # single-thread: ok
        with pytest.raises(SanitizerError, match="exclusive"):
            _in_thread(lambda: lockset.write(owner, "field", policy="publish"))

    def test_publish_accepts_exclusive_writes(self, armed):
        owner = Owner()
        lock = lockset.TrackedLock()
        with lock:
            lockset.write(owner, "field", policy="publish")

        def locked_write():
            with lock:
                lockset.write(owner, "field", policy="publish")

        _in_thread(locked_write)

    def test_anylock_accepts_shared_side(self, armed):
        owner = Owner()
        token = object()
        lockset.write(owner, "field", policy="anylock")

        def write_under_reader():
            lockset.note_acquire(token, exclusive=False)
            try:
                lockset.write(owner, "field", policy="anylock")
            finally:
                lockset.note_release(token, exclusive=False)

        _in_thread(write_under_reader)

    def test_anylock_rejects_no_lock_at_all(self, armed):
        owner = Owner()
        lockset.write(owner, "field", policy="anylock")
        with pytest.raises(SanitizerError, match="no tracked lock"):
            _in_thread(lambda: lockset.write(owner, "field", policy="anylock"))


class TestTrackedField:
    def test_descriptor_stores_and_reads(self):
        class C:
            f = lockset.TrackedField("publish")

        c = C()
        c.f = 41
        assert c.f == 41
        c.f = 42
        assert c.f == 42

    def test_missing_value_raises_attribute_error(self):
        class C:
            f = lockset.TrackedField()

        with pytest.raises(AttributeError):
            C().f

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            lockset.TrackedField("optimistic")

    def test_descriptor_reports_cross_thread_rebind(self, armed):
        class C:
            f = lockset.TrackedField("publish")

        c = C()
        c.f = 0
        with pytest.raises(SanitizerError):
            _in_thread(lambda: setattr(c, "f", 1))


class TestArming:
    def test_tracked_lock_factory_depends_on_level(self):
        lockset.disarm()
        assert isinstance(lockset.tracked_lock(), threading.Lock().__class__)
        try:
            lockset.arm()
            assert isinstance(lockset.tracked_lock(), lockset.TrackedLock)
        finally:
            lockset.disarm()

    def test_disarmed_tracker_is_inert(self):
        lockset.disarm()
        owner = Owner()
        lockset.write(owner, "field")
        _in_thread(lambda: lockset.write(owner, "field"))  # racy but unwatched


class TestThreadedRegression:
    """The gate: level 2 catches an unlocked write that level 1 misses."""

    class Counter:
        def __init__(self) -> None:
            self.value = 0

        def bump(self) -> None:
            lockset.write(self, "value")
            self.value += 1  # no lock anywhere: a latent data race

    def test_level_one_misses_the_race(self):
        # REPRO_SANITIZE=1 arms operand guards only — the lockset
        # tracker stays disarmed and the racy increment goes unreported.
        lockset.disarm()
        counter = self.Counter()
        counter.bump()
        _in_thread(counter.bump)
        counter.bump()
        assert counter.value == 3

    def test_level_two_reports_deterministically(self, armed):
        # Same program, no unlucky interleaving needed: the second
        # thread's first write already proves no lock protects the field.
        counter = self.Counter()
        counter.bump()
        with pytest.raises(SanitizerError, match="no lock protects"):
            _in_thread(counter.bump)
