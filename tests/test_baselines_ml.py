"""Tests for the baseline ML substrates: linear regression, forests, LMs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.baselines.langmodel import DirichletLanguageModel, FieldLanguageModels
from repro.baselines.linear import LinearRegression
from repro.errors import ConfigurationError, NotFittedError


class TestLinearRegression:
    def test_recovers_exact_linear_function(self, rng):
        x = rng.standard_normal((100, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression(ridge=0.0).fit(x, y)
        np.testing.assert_allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0)
        assert model.score(x, y) == pytest.approx(1.0)

    def test_ridge_shrinks_collinear_weights(self, rng):
        x1 = rng.standard_normal(50)
        x = np.column_stack([x1, x1])  # perfectly collinear
        y = x1 * 2
        model = LinearRegression(ridge=1e-3).fit(x, y)
        assert np.all(np.isfinite(model.coef_))

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_shape_validation(self, rng):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(rng.standard_normal(5), np.zeros(5))
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(rng.standard_normal((5, 2)), np.zeros(4))
        with pytest.raises(ConfigurationError):
            LinearRegression(ridge=-1)


class TestDecisionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(np.array([[0.2], [0.8]]))
        assert pred[0] == pytest.approx(0.0, abs=0.05)
        assert pred[1] == pytest.approx(1.0, abs=0.05)

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).standard_normal((30, 2))
        tree = DecisionTreeRegressor().fit(x, np.full(30, 7.0))
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_depth_limit(self, rng):
        x = rng.standard_normal((200, 3))
        y = rng.standard_normal(200)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self, rng):
        x = rng.standard_normal((20, 1))
        y = rng.standard_normal(20)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)
        assert tree.depth() <= 1

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_reduces_training_error_vs_mean(self, rng):
        x = rng.standard_normal((150, 4))
        y = np.sin(x[:, 0] * 2) + 0.1 * rng.standard_normal(150)
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        mse_tree = float(np.mean((tree.predict(x) - y) ** 2))
        mse_mean = float(np.var(y))
        assert mse_tree < 0.5 * mse_mean


class TestRandomForest:
    def test_better_than_single_shallow_tree(self, rng):
        x = rng.standard_normal((300, 5))
        y = x[:, 0] * x[:, 1] + 0.05 * rng.standard_normal(300)
        x_test = rng.standard_normal((100, 5))
        y_test = x_test[:, 0] * x_test[:, 1]
        forest = RandomForestRegressor(n_trees=20, max_depth=6, seed=0).fit(x, y)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        mse_f = float(np.mean((forest.predict(x_test) - y_test) ** 2))
        mse_t = float(np.mean((tree.predict(x_test) - y_test) ** 2))
        assert mse_f < mse_t

    def test_deterministic(self, rng):
        x = rng.standard_normal((60, 3))
        y = rng.standard_normal(60)
        a = RandomForestRegressor(n_trees=5, seed=9).fit(x, y).predict(x)
        b = RandomForestRegressor(n_trees=5, seed=9).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_max_features_sqrt(self):
        forest = RandomForestRegressor(max_features="sqrt")
        assert forest._resolve_max_features(16) == 4
        assert RandomForestRegressor(max_features=None)._resolve_max_features(16) is None

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
        assert not RandomForestRegressor().is_fitted

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RandomForestRegressor(n_trees=0)


class TestDirichletLM:
    DOCS = ["the cat sat on the mat", "dogs chase cats", "stock market crash"]

    def test_matching_doc_scores_higher(self):
        lm = DirichletLanguageModel(mu=10).fit(self.DOCS)
        scores = lm.score_all("cat mat")
        assert int(np.argmax(scores)) == 0

    def test_scores_are_log_probs(self):
        lm = DirichletLanguageModel(mu=10).fit(self.DOCS)
        assert all(s < 0 for s in lm.score_all("cat"))

    def test_empty_query_scores_zero(self):
        lm = DirichletLanguageModel().fit(self.DOCS)
        assert lm.score("", 0) == 0.0

    def test_unseen_term_floor(self):
        lm = DirichletLanguageModel(mu=10).fit(self.DOCS)
        score = lm.score("xylophone", 0)
        assert math.isfinite(score)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            DirichletLanguageModel().score("x", 0)

    def test_invalid_mu(self):
        with pytest.raises(ConfigurationError):
            DirichletLanguageModel(mu=0)

    @given(st.floats(1.0, 5000.0))
    @settings(max_examples=10)
    def test_smoothing_keeps_probabilities_valid(self, mu):
        lm = DirichletLanguageModel(mu=mu).fit(self.DOCS)
        assert all(math.isfinite(s) for s in lm.score_all("cat market zebra"))


class TestFieldLanguageModels:
    def test_field_weighting(self):
        fields = {
            "title": ["cats", "stocks"],
            "body": ["the market is volatile", "felines sleep a lot"],
        }
        flm = FieldLanguageModels(["title", "body"], mu=10).fit(fields)
        flm.set_weights({"title": 1.0, "body": 0.0})
        title_only = flm.score_all("cats")
        assert int(np.argmax(title_only)) == 0
        flm.set_weights({"title": 0.0, "body": 1.0})
        body_only = flm.score_all("market")
        assert int(np.argmax(body_only)) == 0

    def test_weights_normalized(self):
        flm = FieldLanguageModels(["a", "b"])
        flm.set_weights({"a": 2.0, "b": 2.0})
        assert flm.weights == {"a": 0.5, "b": 0.5}

    def test_misaligned_fields_rejected(self):
        flm = FieldLanguageModels(["a", "b"])
        with pytest.raises(ConfigurationError):
            flm.fit({"a": ["x"], "b": ["y", "z"]})
        with pytest.raises(ConfigurationError):
            flm.fit({"a": ["x"]})

    def test_zero_mass_weights_rejected(self):
        flm = FieldLanguageModels(["a"])
        with pytest.raises(ConfigurationError):
            flm.set_weights({"a": 0.0})

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            FieldLanguageModels(["a"]).score_all("x")
