"""repro.analysis.flow + callgraph: the machinery under RL007-RL010.

CFG construction (branches, loops, try/finally routing), the forward
worklist solver, name-based call-graph resolution, and a cross-module
RL007 run over a real temporary tree (the fixture tests in
tests/test_analysis.py cover the single-file path).
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.callgraph import CallGraph, summarize_module
from repro.analysis.flow import CFG, build_cfg, solve_forward
from repro.analysis.framework import SourceModule


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


def _module(source: str, path: str = "src/repro/x.py") -> SourceModule:
    text = textwrap.dedent(source)
    return SourceModule(path=path, text=text, tree=ast.parse(text))


def _node_at(cfg: CFG, lineno: int) -> int:
    for i, stmt in enumerate(cfg.nodes):
        if stmt.lineno == lineno:
            return i
    raise AssertionError(f"no CFG node at line {lineno}")


class TestCfg:
    def test_linear_chain(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n    return b\n"))
        a, b, ret = _node_at(cfg, 2), _node_at(cfg, 3), _node_at(cfg, 4)
        assert cfg.entry == {a}
        assert cfg.succ[a] == {b}
        assert cfg.succ[b] == {ret}
        assert cfg.succ[ret] == {CFG.EXIT}
        # Any statement may raise: every node carries an exceptional edge.
        assert cfg.exc_succ[a] == {CFG.EXC_EXIT}

    def test_if_joins_both_arms(self):
        cfg = build_cfg(
            _func(
                """
                def f(p):
                    if p:
                        a = 1
                    else:
                        b = 2
                    c = 3
                """
            )
        )
        test = _node_at(cfg, 3)
        a, b, c = _node_at(cfg, 4), _node_at(cfg, 6), _node_at(cfg, 7)
        assert cfg.succ[test] == {a, b}
        assert cfg.succ[a] == {c}
        assert cfg.succ[b] == {c}

    def test_while_has_back_edge_and_exit(self):
        cfg = build_cfg(
            _func(
                """
                def f(p):
                    while p:
                        a = 1
                    b = 2
                """
            )
        )
        head, body, after = _node_at(cfg, 3), _node_at(cfg, 4), _node_at(cfg, 5)
        assert body in cfg.succ[head]
        assert after in cfg.succ[head]  # condition false: skip the body
        assert cfg.succ[body] == {head}  # back edge

    def test_return_never_falls_through(self):
        cfg = build_cfg(
            _func(
                """
                def f(p):
                    if p:
                        return 1
                    a = 2
                """
            )
        )
        ret, a = _node_at(cfg, 4), _node_at(cfg, 5)
        assert cfg.succ[ret] == {CFG.EXIT}
        assert a not in cfg.succ[ret]

    def test_try_finally_routes_exceptions_through_finally(self):
        # The motivating shape: a raise inside the body must execute
        # the finally before the exception escapes the function.
        cfg = build_cfg(
            _func(
                """
                def f():
                    try:
                        a = 1
                    finally:
                        b = 2
                    c = 3
                """
            )
        )
        a, b, c = _node_at(cfg, 4), _node_at(cfg, 6), _node_at(cfg, 7)
        assert cfg.exc_succ[a] == {b}  # not straight to EXC_EXIT
        assert cfg.succ[a] == {b}
        assert cfg.succ[b] == {c}
        assert CFG.EXC_EXIT in cfg.exc_succ[b]  # re-raise continuation

    def test_except_handler_receives_body_exceptions(self):
        cfg = build_cfg(
            _func(
                """
                def f():
                    try:
                        a = 1
                    except ValueError:
                        b = 2
                    c = 3
                """
            )
        )
        a, handler = _node_at(cfg, 4), _node_at(cfg, 5)
        b, c = _node_at(cfg, 6), _node_at(cfg, 7)
        assert handler in cfg.exc_succ[a]  # body exception -> handler
        assert cfg.succ[a] == {c}  # no exception: skip the handler
        assert cfg.succ[handler] == {b}
        assert cfg.succ[b] == {c}  # handler body joins after the try


class TestSolver:
    @staticmethod
    def _assigned_names(source: str):
        """Forward may-analysis: which names may be bound at each point."""
        cfg = build_cfg(_func(source))

        def transfer(node: int, state: frozenset[str]) -> frozenset[str]:
            stmt = cfg.nodes[node]
            if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
                return state | {stmt.targets[0].id}
            return state

        return solve_forward(cfg, transfer)

    def test_loop_reaches_fixpoint(self):
        states = self._assigned_names(
            """
            def f(p):
                while p:
                    x = 1
                y = 2
            """
        )
        assert {"x", "y"} <= states[CFG.EXIT]

    def test_branch_union(self):
        states = self._assigned_names(
            """
            def f(p):
                if p:
                    a = 1
                else:
                    b = 2
            """
        )
        assert {"a", "b"} <= states[CFG.EXIT]

    def test_finally_state_reaches_exceptional_exit(self):
        states = self._assigned_names(
            """
            def f():
                try:
                    a = 1
                finally:
                    b = 2
            """
        )
        # Exceptions escape only after the finally ran.
        assert "b" in states[CFG.EXC_EXIT]

    def test_exc_transfer_overrides_exception_edges(self):
        cfg = build_cfg(_func("def f():\n    x = 1\n"))

        def transfer(node: int, state: frozenset[str]) -> frozenset[str]:
            return state | {"normal"}

        def exc_transfer(node: int, state: frozenset[str]) -> frozenset[str]:
            return state  # the statement never completed

        states = solve_forward(cfg, transfer, exc_transfer=exc_transfer)
        assert "normal" in states[CFG.EXIT]
        assert "normal" not in states[CFG.EXC_EXIT]


class TestCallGraph:
    SOURCE = """
    from repro.core.annotations import requires_lock


    class Store:
        @requires_lock("write")
        def apply(self, delta):
            self._commit(delta)

        def _commit(self, delta):
            pass

        def refresh(self):
            with self._lock.write():
                self.apply({})

    async def serve(store):
        store.apply({})

    def helper():
        serve(None)
    """

    def test_summary_shape(self):
        summary = summarize_module(_module(self.SOURCE))
        by_name = {f.qualname: f for f in summary.functions}
        apply_ = by_name["Store.apply"]
        assert apply_.requires_lock == "write"
        assert apply_.cls == "Store"
        serve = by_name["serve"]
        assert serve.is_async
        # refresh's call to self.apply sits under the writer lock.
        refresh = by_name["Store.refresh"]
        (call,) = [c for c in refresh.calls if c.name == "apply"]
        assert call.lock_ctx == "write"
        assert call.receiver == "self"
        # serve's call has an opaque receiver, no lock context.
        (call,) = [c for c in serve.calls if c.name == "apply"]
        assert call.receiver == "store"
        assert call.lock_ctx is None

    def test_resolution(self):
        summary = summarize_module(_module(self.SOURCE))
        graph = CallGraph([summary])
        by_name = {f.qualname: f for f in summary.functions}
        refresh, serve, helper = by_name["Store.refresh"], by_name["serve"], by_name["helper"]
        # self.apply -> the caller's own class method, exactly.
        (call,) = [c for c in refresh.calls if c.name == "apply"]
        assert [f.qualname for f in graph.resolve(refresh, call)] == ["Store.apply"]
        # store.apply -> every method named apply (over-approximation).
        (call,) = [c for c in serve.calls if c.name == "apply"]
        assert "Store.apply" in [f.qualname for f in graph.resolve(serve, call)]
        # Bare call -> module-local function.
        (call,) = [c for c in helper.calls if c.name == "serve"]
        assert [f.qualname for f in graph.resolve(helper, call)] == ["serve"]


class TestCrossModule:
    def test_rl007_spans_files(self, tmp_path: Path):
        (tmp_path / "store.py").write_text(
            textwrap.dedent(
                """
                from repro.core.annotations import requires_lock


                class Store:
                    @requires_lock("write")
                    def apply_delta(self, delta):
                        pass
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "caller.py").write_text(
            "def push(store, delta):\n    store.apply_delta(delta)\n",
            encoding="utf-8",
        )
        report = Analyzer().check_paths([tmp_path])
        rl007 = [f for f in report.findings if f.rule_id == "RL007"]
        assert len(rl007) == 1
        assert rl007[0].path.endswith("caller.py")
        assert rl007[0].line == 2
        assert "apply_delta" in rl007[0].message

    def test_annotated_caller_is_exempt_across_files(self, tmp_path: Path):
        (tmp_path / "store.py").write_text(
            textwrap.dedent(
                """
                from repro.core.annotations import requires_lock


                class Store:
                    @requires_lock("write")
                    def apply_delta(self, delta):
                        pass
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "caller.py").write_text(
            textwrap.dedent(
                """
                from repro.core.annotations import requires_lock


                @requires_lock("write")
                def push(store, delta):
                    store.apply_delta(delta)
                """
            ),
            encoding="utf-8",
        )
        report = Analyzer().check_paths([tmp_path])
        assert [f for f in report.findings if f.rule_id == "RL007"] == []
