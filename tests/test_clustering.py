"""Tests for MST, hierarchy, HDBSCAN and medoids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    HDBSCAN,
    SingleLinkageTree,
    cluster_medoids,
    condense_tree,
    medoid_index,
    mutual_reachability_mst,
)
from repro.clustering.hierarchy import compute_stability
from repro.clustering.mst import core_distances
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(11)
    centers = np.array([[0, 0], [12, 0], [0, 12], [12, 12]], dtype=float)
    points = np.vstack([c + rng.standard_normal((40, 2)) for c in centers])
    # noise well away from the blobs so it is unambiguously outlying
    noise = rng.uniform(25, 60, (12, 2)) * rng.choice([-1, 1], (12, 2))
    labels = np.concatenate([np.repeat(np.arange(4), 40), np.full(12, -1)])
    return np.vstack([points, noise]), labels


class TestMST:
    def test_edge_count(self, rng):
        pts = rng.standard_normal((20, 3))
        edges, weights = mutual_reachability_mst(pts, min_samples=3)
        assert edges.shape == (19, 2)
        assert weights.shape == (19,)

    def test_spanning(self, rng):
        import networkx as nx

        pts = rng.standard_normal((25, 3))
        edges, _ = mutual_reachability_mst(pts, min_samples=3)
        g = nx.Graph(list(map(tuple, edges)))
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 25

    def test_weights_at_least_core_distances(self, rng):
        pts = rng.standard_normal((30, 2))
        core = core_distances(pts, 4)
        edges, weights = mutual_reachability_mst(pts, min_samples=4)
        for (u, v), w in zip(edges, weights):
            assert w >= max(core[u], core[v]) - 1e-9

    def test_min_weight_total(self, rng):
        """Prim's result must match networkx's MST total weight."""
        import networkx as nx

        pts = rng.standard_normal((15, 2))
        core = core_distances(pts, 2)
        n = len(pts)
        g = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                d = float(np.linalg.norm(pts[i] - pts[j]))
                g.add_edge(i, j, weight=max(d, core[i], core[j]))
        expected = sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True))
        _, weights = mutual_reachability_mst(pts, min_samples=2)
        assert float(weights.sum()) == pytest.approx(expected, rel=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            mutual_reachability_mst(np.zeros((1, 2)))


class TestSingleLinkageTree:
    def test_merge_sizes(self, rng):
        pts = rng.standard_normal((10, 2))
        edges, weights = mutual_reachability_mst(pts, 2)
        slt = SingleLinkageTree.from_mst(edges, weights)
        assert slt.merges.shape == (9, 4)
        assert slt.merges[-1, 3] == 10  # final merge covers everything

    def test_distances_nondecreasing(self, rng):
        pts = rng.standard_normal((15, 2))
        edges, weights = mutual_reachability_mst(pts, 2)
        slt = SingleLinkageTree.from_mst(edges, weights)
        d = slt.merges[:, 2]
        assert np.all(np.diff(d) >= -1e-12)


class TestCondensedTree:
    def _tree(self, blobs):
        points, _ = blobs
        edges, weights = mutual_reachability_mst(points, 5)
        slt = SingleLinkageTree.from_mst(edges, weights)
        return condense_tree(slt, min_cluster_size=10)

    def test_every_point_appears_once(self, blobs):
        tree = self._tree(blobs)
        point_children = tree.child[tree.child < tree.n_points]
        assert len(point_children) == tree.n_points
        assert len(set(point_children.tolist())) == tree.n_points

    def test_leaves_have_no_cluster_children(self, blobs):
        tree = self._tree(blobs)
        for leaf in tree.leaves():
            mask = tree.parent == leaf
            assert all(c < tree.n_points for c in tree.child[mask])

    def test_points_of_root_is_everything(self, blobs):
        tree = self._tree(blobs)
        root = int(tree.parent.min())
        assert len(tree.points_of(root)) == tree.n_points

    def test_stability_nonnegative(self, blobs):
        tree = self._tree(blobs)
        for value in compute_stability(tree).values():
            assert value >= -1e-9

    def test_min_cluster_size_validation(self, blobs):
        points, _ = blobs
        edges, weights = mutual_reachability_mst(points, 5)
        slt = SingleLinkageTree.from_mst(edges, weights)
        with pytest.raises(ConfigurationError):
            condense_tree(slt, min_cluster_size=1)


class TestHDBSCAN:
    @pytest.mark.parametrize("method", ["eom", "leaf"])
    def test_finds_four_blobs(self, blobs, method):
        points, truth = blobs
        model = HDBSCAN(min_cluster_size=10, cluster_selection_method=method).fit(points)
        assert model.n_clusters_ == 4
        # purity of each found cluster
        for label in range(model.n_clusters_):
            members = truth[model.labels_ == label]
            values, counts = np.unique(members[members >= 0], return_counts=True)
            assert counts.max() / max(len(members), 1) > 0.9

    def test_noise_detected(self, blobs):
        points, truth = blobs
        model = HDBSCAN(min_cluster_size=10).fit(points)
        noise_found = set(np.flatnonzero(model.labels_ == -1).tolist())
        true_noise = set(np.flatnonzero(truth == -1).tolist())
        assert len(noise_found & true_noise) >= len(true_noise) // 2

    def test_probabilities_bounds(self, blobs):
        points, _ = blobs
        model = HDBSCAN(min_cluster_size=10).fit(points)
        assert np.all(model.probabilities_ >= 0) and np.all(model.probabilities_ <= 1)
        assert np.all(model.probabilities_[model.labels_ == -1] == 0)

    def test_uniform_data_mostly_noise_or_one_cluster(self, rng):
        points = rng.uniform(0, 1, (80, 2))
        model = HDBSCAN(min_cluster_size=8).fit(points)
        assert model.n_clusters_ <= 6  # no spurious fine structure

    def test_tiny_input_all_noise(self):
        model = HDBSCAN(min_cluster_size=5).fit(np.zeros((3, 2)))
        assert np.all(model.labels_ == -1)

    def test_fit_predict(self, blobs):
        points, _ = blobs
        labels = HDBSCAN(min_cluster_size=10).fit_predict(points)
        assert labels.shape == (points.shape[0],)

    def test_medoids_are_members(self, blobs):
        points, _ = blobs
        model = HDBSCAN(min_cluster_size=10).fit(points)
        medoids = model.medoids(points)
        for label, row in medoids.items():
            assert model.labels_[row] == label

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            _ = HDBSCAN().n_clusters_

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            HDBSCAN(min_cluster_size=1)
        with pytest.raises(ConfigurationError):
            HDBSCAN(cluster_selection_method="magic")

    def test_deterministic(self, blobs):
        points, _ = blobs
        a = HDBSCAN(min_cluster_size=10).fit_predict(points)
        b = HDBSCAN(min_cluster_size=10).fit_predict(points)
        np.testing.assert_array_equal(a, b)


class TestMedoids:
    def test_medoid_minimizes_total_distance(self, rng):
        pts = rng.standard_normal((20, 3))
        best = medoid_index(pts)
        totals = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=2).sum(axis=1)
        assert best == int(np.argmin(totals))

    def test_cluster_medoids_global_ids(self, rng):
        pts = rng.standard_normal((30, 2))
        labels = np.array([0] * 10 + [1] * 10 + [-1] * 10)
        medoids = cluster_medoids(pts, labels)
        assert set(medoids) == {0, 1}
        assert labels[medoids[0]] == 0 and labels[medoids[1]] == 1

    def test_include_noise(self, rng):
        pts = rng.standard_normal((10, 2))
        labels = np.array([0] * 5 + [-1] * 5)
        medoids = cluster_medoids(pts, labels, include_noise=True)
        assert -1 in medoids

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            medoid_index(np.empty((0, 3)))

    def test_misaligned_labels(self, rng):
        with pytest.raises(ConfigurationError):
            cluster_medoids(rng.standard_normal((5, 2)), np.zeros(4))

    @given(st.integers(1, 30))
    @settings(max_examples=10, deadline=None)
    def test_single_cluster_medoid_valid(self, n):
        pts = np.random.default_rng(n).standard_normal((n, 2))
        assert 0 <= medoid_index(pts) < n
