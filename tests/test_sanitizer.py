"""REPRO_SANITIZE runtime checks: instrumented lock + operand guards.

The instrumented lock must *raise* exactly where the plain RWLock would
deadlock or corrupt state, and the kernel-boundary guards must catch
NaN/Inf poisoning and silent dtype promotion before a GEMM spreads them
into every downstream score.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import DiscoveryEngine
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.lifecycle import InstrumentedRWLock, RWLock
from repro.core.semimg import build_federation_embeddings
from repro.datamodel.relation import Relation
from repro.embedding.semantic import SemanticHashEncoder
from repro.errors import SanitizerError
from repro.sanitize import guard_operands, sanitize_enabled


class TestSanitizeEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "  0  "])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()


class TestGuardOperands:
    def test_clean_operands_pass(self):
        guard_operands(
            np.ones((2, 3), dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            where="t",
            expect_dtype=np.dtype(np.float32),
        )

    def test_nan_raises(self):
        bad = np.ones(4)
        bad[2] = np.nan
        with pytest.raises(SanitizerError, match="NaN/Inf"):
            guard_operands(bad, where="t")

    def test_inf_raises(self):
        bad = np.ones(4, dtype=np.float32)
        bad[0] = np.inf
        with pytest.raises(SanitizerError, match="operand 1"):
            guard_operands(np.ones(2, dtype=np.float32), bad, where="t")

    def test_dtype_mismatch_raises(self):
        with pytest.raises(SanitizerError, match="dtype"):
            guard_operands(
                np.ones(4, dtype=np.float64),
                where="t",
                expect_dtype=np.dtype(np.float32),
            )

    def test_integer_operands_skip_finiteness(self):
        guard_operands(np.arange(5), where="t")


class TestInstrumentedRWLock:
    def test_plain_usage_works(self):
        lock = InstrumentedRWLock()
        with lock.read():
            pass
        with lock.write():
            pass
        with lock.read():
            pass

    def test_concurrent_readers_overlap(self):
        lock = InstrumentedRWLock()
        inside = threading.Barrier(2, timeout=5.0)

        def reader():
            with lock.read():
                inside.wait()  # both threads hold the reader side at once

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert not any(t.is_alive() for t in threads)

    def test_write_under_read_raises(self):
        lock = InstrumentedRWLock()
        with lock.read():
            with pytest.raises(SanitizerError, match="write-while-reading"):
                with lock.write():
                    pass

    def test_read_under_write_raises(self):
        lock = InstrumentedRWLock()
        with lock.write():
            with pytest.raises(SanitizerError, match="writer lock"):
                with lock.read():
                    pass

    def test_nested_read_raises(self):
        lock = InstrumentedRWLock()
        with lock.read():
            with pytest.raises(SanitizerError, match="nested read"):
                with lock.read():
                    pass

    def test_nested_write_raises(self):
        lock = InstrumentedRWLock()
        with lock.write():
            with pytest.raises(SanitizerError, match="nested write"):
                with lock.write():
                    pass

    def test_double_release_raises(self):
        lock = InstrumentedRWLock()
        with pytest.raises(SanitizerError, match="does not hold"):
            lock.release_read()
        with pytest.raises(SanitizerError, match="does not hold"):
            lock.release_write()
        lock.acquire_read()
        lock.release_read()
        with pytest.raises(SanitizerError, match="does not hold"):
            lock.release_read()

    def test_writer_starvation_times_out(self):
        lock = InstrumentedRWLock(writer_timeout=0.1)
        holding = threading.Event()
        release = threading.Event()

        def stuck_reader():
            with lock.read():
                holding.set()
                release.wait(5.0)

        t = threading.Thread(target=stuck_reader, daemon=True)
        t.start()
        assert holding.wait(5.0)
        try:
            with pytest.raises(SanitizerError, match="starved"):
                with lock.write():
                    pass
        finally:
            release.set()
            t.join(5.0)
        # The failed acquire must not leave the waiting-writer count
        # raised — readers proceed normally afterwards.
        with lock.read():
            pass

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            InstrumentedRWLock(writer_timeout=0.0)


@pytest.fixture()
def sanitized_engine(tiny_federation) -> DiscoveryEngine:
    return DiscoveryEngine(dim=64, sanitize=True).index(tiny_federation)


class TestEngineSanitizerMode:
    def test_lock_swap(self, tiny_federation):
        armed = DiscoveryEngine(dim=64, sanitize=True)
        plain = DiscoveryEngine(dim=64, sanitize=False)
        assert isinstance(armed._lifecycle_lock, InstrumentedRWLock)
        assert isinstance(plain._lifecycle_lock, RWLock)
        assert not isinstance(plain._lifecycle_lock, InstrumentedRWLock)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert DiscoveryEngine(dim=64).sanitize
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not DiscoveryEngine(dim=64).sanitize

    def test_injected_write_under_read_is_caught(self, sanitized_engine):
        """The acceptance demo: a delta issued while the same thread is
        inside the reader lock raises instead of deadlocking."""
        extra = Relation(
            "extra",
            ["Topic", "Year"],
            [["storms", "2022"], ["floods", "2023"]],
            caption="weather events",
        )
        with pytest.raises(SanitizerError, match="write-while-reading"):
            with sanitized_engine._lifecycle_lock.read():
                sanitized_engine.add_relations({"extra/extra": extra})

    def test_methods_inherit_sanitize(self, sanitized_engine):
        assert sanitized_engine.method("exs").sanitize is True

    def test_search_still_works_under_sanitize(self, sanitized_engine):
        result = sanitized_engine.search("vaccination europe", method="exs", k=2)
        assert result.matches


class TestFusedKernelGuards:
    def _exs(self, tiny_federation, **kwargs) -> ExhaustiveSearch:
        embeddings = build_federation_embeddings(
            tiny_federation, SemanticHashEncoder(dim=64)
        )
        exs = ExhaustiveSearch(**kwargs)
        exs.sanitize = True
        return exs.index(embeddings)

    def test_poisoned_matrix_is_caught(self, tiny_federation):
        exs = self._exs(tiny_federation)
        assert exs._matrix is not None
        exs._matrix[0, 0] = np.nan
        with pytest.raises(SanitizerError, match="NaN/Inf"):
            exs.search_batch(["vaccine"])

    def test_dtype_mismatched_query_block_is_caught(self, tiny_federation):
        exs = self._exs(tiny_federation, dtype=np.float32)
        block = np.ones((1, 64), dtype=np.float64)
        with pytest.raises(SanitizerError, match="dtype"):
            exs._scan_fused(block)

    def test_clean_scan_unaffected(self, tiny_federation):
        exs = self._exs(tiny_federation)
        batch = exs.search_batch(["vaccine", "football"])
        assert len(batch) == 2


class TestCollectionGuards:
    def _collection(self, monkeypatch, dtype):
        from repro.vectordb.collection import Collection, Point

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        col = Collection("guarded", dim=4, dtype=dtype)
        col.upsert(
            [Point(i, np.full(4, float(i + 1), dtype=dtype)) for i in range(3)]
        )
        return col

    def test_nan_query_block_is_caught(self, monkeypatch):
        col = self._collection(monkeypatch, np.float32)
        bad = np.ones((2, 4), dtype=np.float32)
        bad[1, 3] = np.nan
        with pytest.raises(SanitizerError, match="NaN/Inf"):
            col.search_batch(bad, k=1)

    def test_dtype_promoted_query_block_is_caught(self, monkeypatch):
        col = self._collection(monkeypatch, np.float32)
        with pytest.raises(SanitizerError, match="dtype"):
            col.search_batch(np.ones((1, 4), dtype=np.float64), k=1)

    def test_clean_batch_passes(self, monkeypatch):
        col = self._collection(monkeypatch, np.float32)
        hits = col.search_batch(np.ones((2, 4), dtype=np.float32), k=2)
        assert len(hits) == 2 and len(hits[0]) == 2

    def test_unarmed_collection_casts_silently(self, monkeypatch):
        from repro.vectordb.collection import Collection, Point

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        col = Collection("plain", dim=4, dtype=np.float32)
        col.upsert([Point(0, np.ones(4, dtype=np.float32))])
        hits = col.search_batch(np.ones((1, 4), dtype=np.float64), k=1)
        assert len(hits[0]) == 1
