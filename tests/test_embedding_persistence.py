"""Tests for federation-embedding persistence (engine save/load_index)."""

import numpy as np
import pytest

from repro.core import (
    DiscoveryEngine,
    load_federation_embeddings,
    save_federation_embeddings,
)
from repro.data.covid import covid_federation
from repro.embedding import SemanticHashEncoder
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def engine():
    eng = DiscoveryEngine(dim=96)
    return eng.index(covid_federation())


class TestEmbeddingPersistence:
    def test_roundtrip_preserves_everything(self, engine, tmp_path):
        path = tmp_path / "emb.npz"
        save_federation_embeddings(engine.embeddings, path)
        loaded = load_federation_embeddings(path, engine.encoder)
        assert loaded.relation_ids() == engine.embeddings.relation_ids()
        for orig, rest in zip(engine.embeddings.relations, loaded.relations):
            assert rest.values == orig.values
            assert rest.attr_names == orig.attr_names
            np.testing.assert_array_equal(rest.vectors, orig.vectors)
            np.testing.assert_array_equal(rest.counts, orig.counts)

    def test_engine_save_load_same_rankings(self, engine, tmp_path):
        path = tmp_path / "engine.npz"
        engine.save_index(path)
        restored = DiscoveryEngine(dim=96).load_index(path)
        for method in ("exs", "anns"):
            a = engine.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            b = restored.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            assert a == b

    def test_dim_mismatch_rejected(self, engine, tmp_path):
        path = tmp_path / "emb96.npz"
        engine.save_index(path)
        with pytest.raises(ConfigurationError):
            load_federation_embeddings(path, SemanticHashEncoder(dim=64))

    def test_loaded_engine_is_indexed(self, engine, tmp_path):
        path = tmp_path / "e.npz"
        engine.save_index(path)
        restored = DiscoveryEngine(dim=96)
        assert not restored.is_indexed
        restored.load_index(path)
        assert restored.is_indexed
