"""Tests for federation-embedding persistence (engine save/load_index)."""

import numpy as np
import pytest

from repro.core import (
    DiscoveryEngine,
    load_federation_embeddings,
    save_federation_embeddings,
)
from repro.core.semimg import save_federation_embeddings_npz
from repro.data.covid import covid_federation
from repro.embedding import SemanticHashEncoder
from repro.errors import ConfigurationError
from repro.storage import npz as legacy_npz


@pytest.fixture(scope="module")
def engine():
    eng = DiscoveryEngine(dim=96)
    return eng.index(covid_federation())


class TestEmbeddingPersistence:
    def test_roundtrip_preserves_everything(self, engine, tmp_path):
        path = tmp_path / "emb.npz"
        save_federation_embeddings(engine.embeddings, path)
        loaded = load_federation_embeddings(path, engine.encoder)
        assert loaded.relation_ids() == engine.embeddings.relation_ids()
        for orig, rest in zip(engine.embeddings.relations, loaded.relations):
            assert rest.values == orig.values
            assert rest.attr_names == orig.attr_names
            np.testing.assert_array_equal(rest.vectors, orig.vectors)
            np.testing.assert_array_equal(rest.counts, orig.counts)

    def test_engine_save_load_same_rankings(self, engine, tmp_path):
        path = tmp_path / "engine.npz"
        engine.save_index(path)
        restored = DiscoveryEngine(dim=96).load_index(path)
        for method in ("exs", "anns"):
            a = engine.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            b = restored.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            assert a == b

    def test_dim_mismatch_rejected(self, engine, tmp_path):
        path = tmp_path / "emb96.npz"
        engine.save_index(path)
        with pytest.raises(ConfigurationError):
            load_federation_embeddings(path, SemanticHashEncoder(dim=64))

    def test_engine_load_index_rejects_dim_mismatch(self, engine, tmp_path):
        """``load_index`` validates the snapshot against ``self.encoder``
        up front, raising ConfigurationError rather than letting the
        mismatch surface later as a shape error inside a scan kernel."""
        path = tmp_path / "emb96_engine.npz"
        engine.save_index(path)
        mismatched = DiscoveryEngine(dim=64)
        with pytest.raises(ConfigurationError):
            mismatched.load_index(path)
        assert not mismatched.is_indexed

    def test_sharded_engine_reload_matches_unsharded(self, engine, tmp_path):
        """A persisted store re-partitions deterministically on load."""
        path = tmp_path / "sharded.npz"
        engine.save_index(path)
        restored = DiscoveryEngine(dim=96, shards=3).load_index(path)
        for method in ("exs",):
            a = engine.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            b = restored.search("COVID", method=method, k=4, h=-1.0).relation_ids()
            assert a == b

    def test_build_seconds_and_generation_roundtrip(self, engine, tmp_path):
        # Regression: build_seconds used to be dropped on save, so
        # every reloaded store claimed a zero-cost build.
        path = tmp_path / "meta.npz"
        assert engine.embeddings.build_seconds > 0.0
        save_federation_embeddings(engine.embeddings, path)
        loaded = load_federation_embeddings(path, engine.encoder)
        assert loaded.build_seconds == engine.embeddings.build_seconds
        assert loaded.generation == engine.embeddings.generation

    def test_legacy_npz_snapshots_still_load(self, engine, tmp_path):
        """Pre-segment single-file ``.npz`` snapshots keep loading."""
        path = tmp_path / "old.npz"
        save_federation_embeddings_npz(engine.embeddings, path)
        loaded = load_federation_embeddings(path, engine.encoder)
        assert loaded.relation_ids() == engine.embeddings.relation_ids()
        assert loaded.build_seconds == engine.embeddings.build_seconds
        assert loaded.generation == engine.embeddings.generation

    def test_old_snapshots_without_metadata_still_load(self, engine, tmp_path):
        path = tmp_path / "old.npz"
        save_federation_embeddings_npz(engine.embeddings, path)
        data = legacy_npz.load_npz(path)
        arrays = {
            k: v for k, v in data.items() if k not in ("build_seconds", "generation")
        }
        legacy_npz.save_npz(path, arrays)
        loaded = load_federation_embeddings(path, engine.encoder)
        assert loaded.build_seconds == 0.0
        assert loaded.generation == 0

    def test_legacy_npz_cannot_mmap(self, engine, tmp_path):
        """``mmap=True`` needs a segment snapshot — a compressed archive
        has no raw bytes to map, so the combination is rejected loudly."""
        path = tmp_path / "old.npz"
        save_federation_embeddings_npz(engine.embeddings, path)
        with pytest.raises(ConfigurationError):
            load_federation_embeddings(path, engine.encoder, mmap=True)

    def test_loaded_engine_is_indexed(self, engine, tmp_path):
        path = tmp_path / "e.npz"
        engine.save_index(path)
        restored = DiscoveryEngine(dim=96)
        assert not restored.is_indexed
        restored.load_index(path)
        assert restored.is_indexed
