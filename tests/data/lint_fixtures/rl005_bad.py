"""Known-bad fixture for RL005: raw pools outside repro.exec.

Line numbers are asserted exactly in tests/test_analysis.py.
"""

import concurrent.futures
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def churn(tasks):
    with ThreadPoolExecutor(max_workers=len(tasks)) as pool:  # line 11
        list(pool.map(lambda t: t(), tasks))


def escape(tasks):
    pool = concurrent.futures.ProcessPoolExecutor(2)  # line 16
    try:
        return list(pool.map(lambda t: t(), tasks))
    finally:
        pool.shutdown()
