"""Known-bad fixture for RL002: metric names outside the vocabulary.

Line numbers are asserted exactly in tests/test_analysis.py.
"""


class BadRecorder:
    name = "exs"

    def record(self):
        self.metrics.counter("engine.nope").inc()  # line 11: unknown name
        self.metrics.histogram(f"{self.name}.sacn").observe(1.0)  # line 12: typo
        self.metrics.counter("engine.generation").inc()  # line 13: gauge via counter
        self.metrics.counter("engine.queries").inc()  # declared: not flagged
        self.metrics.histogram(f"{self.name}.scan").observe(1.0)  # declared: not flagged
        self.metrics.counter("cache.nearhits").inc()  # line 16: unknown cache name
        self.metrics.counter("cache.probe_ms").inc()  # line 17: histogram via counter
        self.metrics.counter("cache.near_hits").inc()  # declared: not flagged
        self.metrics.gauge("cache.bytes").set(1.0)  # declared: not flagged
        self.metrics.counter("encoder_cache.evictions").inc()  # declared: not flagged
