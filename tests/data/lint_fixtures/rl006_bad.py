"""Known-bad fixture for RL006: raw numpy array I/O outside repro.storage.

Line numbers are asserted exactly in tests/test_analysis.py.
"""

import numpy as np


def persist(matrix, path):
    np.save(path, matrix)  # line 10
    np.savez_compressed(path.with_suffix(".npz"), vectors=matrix)  # line 11


def restore(path):
    data = np.load(path, allow_pickle=False)  # line 15
    lazy = np.memmap(path, dtype=np.float32, mode="r")  # line 16
    return data, lazy
