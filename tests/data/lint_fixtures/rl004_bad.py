"""Known-bad fixture for RL004: concurrency/error-handling hygiene.

Line numbers are asserted exactly in tests/test_analysis.py.
"""

import threading

from repro.core.lifecycle import RWLock


class BadShared:
    cache = {}  # line 12: mutable class-level default

    def __init__(self):
        self._lifecycle_lock = RWLock()
        self._aux = threading.Lock()  # line 16: raw lock beside the RWLock

    def run(self, work):
        try:
            work()
        except Exception:  # line 21: swallowed
            pass


class BadResultCache:
    """A query cache whose read path regressed from lock-free to locked."""

    def __init__(self):
        self._lifecycle_lock = RWLock()
        self._probe_lock = threading.Lock()  # line 30: raw lock beside the RWLock
