"""Known-bad fixture for RL008: blocking work reachable from async serving.

Linted under the virtual path ``src/repro/serving/rl008_bad.py`` (the
rule only roots at async functions inside ``repro/serving/``).  Line
numbers are asserted exactly in tests/test_analysis.py.
"""

import time

from repro.linalg.gemm import cosine_similarity


async def score_inline(query, store):
    scores = cosine_similarity(query, store)  # line 14: GEMM on the loop
    time.sleep(0.001)  # line 15: blocking sleep on the loop
    return scores


async def read_snapshot(path):
    return _slurp(path)  # line 20: reaches open() through _slurp


def _slurp(path):
    with open(path) as fh:
        return fh.read()


async def score_offloaded(query, store, backend):
    # Executor hop: the callable crosses as a bare reference, no edge.
    return await backend.submit(cosine_similarity, query, store)
