"""Known-bad fixture for RL009: buffer/segment handles that leak.

Line numbers are asserted exactly in tests/test_analysis.py — keep the
layout stable when editing.
"""

from repro.storage.buffers import MappedBuffer, SharedBuffer
from repro.storage.segments import SegmentWriter


def leaks_on_fallthrough(arr):
    buf = SharedBuffer.from_array(arr)  # line 12: never released
    total = buf.view().sum()
    return total


def leaks_on_exception(path):
    buf = MappedBuffer.from_file(path)  # line 18: leaks if sum() raises
    total = buf.view().sum()
    buf.close()
    return total


def discards_handle(arr):
    SharedBuffer.from_array(arr)  # line 25: discarded immediately


def writer_never_commits(root, arr):
    writer = SegmentWriter(root)  # line 29: falls through uncommitted
    writer.append(arr)


def clean_try_finally(path):
    buf = MappedBuffer.from_file(path)
    try:
        total = buf.view().sum()
    finally:
        buf.close()
    return total


def clean_writer(root, arr):
    # An exception between construction and commit is crash-safe by
    # design (readers never see an uncommitted segment): not flagged.
    writer = SegmentWriter(root)
    writer.append(arr)
    writer.commit()
