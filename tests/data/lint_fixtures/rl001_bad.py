"""Known-bad fixture for RL001: guarded state mutated without the lock.

Line numbers are asserted exactly in tests/test_analysis.py — keep the
layout stable when editing.
"""

from repro.core.lifecycle import RWLock, guarded_by


@guarded_by("_lifecycle_lock", "_store", "_methods")
class BadEngine:
    def __init__(self):
        self._lifecycle_lock = RWLock()
        self._store = {}
        self._methods = {}

    def add(self, key, value):
        self._store[key] = value  # line 18: subscript store, no writer lock

    def reset(self):
        self._methods.clear()  # line 21: mutator call, no writer lock

    def search(self, key):  # line 23: public search, never takes the lock
        return self._store.get(key)

    def fine(self, key, value):
        with self._lifecycle_lock.write():
            self._store[key] = value  # held: not flagged

    async def search_async(self, key):  # line 30: async search, no lock either
        return self._store.get(key)
