"""Known-bad fixture for RL007: @requires_lock callees, lockless callers.

Line numbers are asserted exactly in tests/test_analysis.py — keep the
layout stable when editing.
"""

from repro.core.annotations import requires_lock
from repro.core.lifecycle import RWLock


class BadFederation:
    def __init__(self):
        self._lock = RWLock()
        self._rows = {}

    @requires_lock("write")
    def _apply(self, delta):
        self._rows.update(delta)

    @requires_lock("read")
    def _snapshot(self):
        return dict(self._rows)

    def apply_unlocked(self, delta):
        self._apply(delta)  # line 25: no lock held

    def apply_under_read(self, delta):
        with self._lock.read():
            self._apply(delta)  # line 29: read side, write required

    def snapshot_unlocked(self):
        return self._snapshot()  # line 32: no lock held

    def apply_locked(self, delta):
        with self._lock.write():
            self._apply(delta)  # held: not flagged

    @requires_lock("write")
    def apply_annotated(self, delta):
        self._apply(delta)  # obligation pushed to callers: not flagged

    def snapshot_under_write(self):
        with self._lock.write():
            return self._snapshot()  # write satisfies read: not flagged


@requires_lock("write")
def rebuild_index(rows):
    return sorted(rows)


def refresh():
    return rebuild_index({})  # line 53: bare module-local call, no lock
