"""Known-bad fixture for RL010: @monotonic fields written wrongly.

Line numbers are asserted exactly in tests/test_analysis.py — keep the
layout stable when editing.
"""

from repro.core.annotations import monotonic, requires_lock
from repro.core.lifecycle import RWLock


@monotonic("generation")
class BadVersioned:
    def __init__(self):
        self._lock = RWLock()
        self.generation = 0  # construction is exempt

    def bump_unlocked(self):
        self.generation += 1  # line 18: monotonic but no writer lock

    def rewind(self):
        with self._lock.write():
            self.generation = 0  # line 22: locked but not monotonic

    @requires_lock("write")
    def clobber(self, value):
        self.generation = value  # line 26: unrelated value

    def double_bad(self):
        self.generation = 0  # line 29: unlocked AND non-monotonic

    def bump_locked(self):
        with self._lock.write():
            self.generation += 1  # clean

    @requires_lock("write")
    def publish(self, staged):
        self.generation = self.generation + staged  # clean: derived
