"""Known-bad fixture for RL003 (checked under a virtual repro/linalg path).

Line numbers are asserted exactly in tests/test_analysis.py.
"""

import numpy as np


def sloppy(values):
    out = np.zeros(len(values))  # line 10: dtype-less allocation
    sims = np.asarray(values)  # line 11: dtype-less asarray
    promoted = sims.astype(np.float64)  # line 12: literal float64 coercion
    scratch = np.empty(3, dtype=np.float64)  # line 13: literal float64 dtype
    keep = np.asarray(values, dtype=out.dtype)  # explicit: not flagged
    return out, promoted, scratch, keep
