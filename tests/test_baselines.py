"""Tests for the five baseline retrieval methods."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.baselines.adh import AdHocTableRetrieval
from repro.baselines.features import FEATURE_NAMES, LexicalFeatureExtractor
from repro.baselines.tml import TableMeetsLLM
from repro.errors import NotFittedError

TRAIN_PAIRS = [
    ("vaccination campaign europe", "vaccines/vaccines", 2),
    ("vaccination campaign europe", "football/football", 0),
    ("vaccination campaign europe", "economy/economy", 0),
    ("football cup results", "football/football", 2),
    ("football cup results", "vaccines/vaccines", 0),
    ("gdp by country", "economy/economy", 2),
    ("gdp by country", "football/football", 0),
]


@pytest.fixture(scope="module")
def engine(tiny_federation):
    from repro.core import DiscoveryEngine

    return DiscoveryEngine(dim=96).index(tiny_federation)


@pytest.fixture(scope="module", params=BASELINE_NAMES)
def baseline(request, tiny_federation, engine):
    method = make_baseline(request.param)
    method.index_federation(tiny_federation, engine.embeddings)
    if hasattr(method, "fit"):
        method.fit(TRAIN_PAIRS)
    return method


class TestAllBaselines:
    def test_search_returns_ranked_results(self, baseline):
        result = baseline.search("vaccination campaign europe", k=3)
        assert len(result) >= 1
        scores = [m.score for m in result.matches]
        assert scores == sorted(scores, reverse=True)

    def test_topical_query_ranks_right_table_first(self, baseline):
        result = baseline.search("football cup results", k=3)
        assert result.top().relation_id == "football/football"

    def test_no_threshold_by_default(self, baseline):
        # baseline scores may be negative (log-likelihoods); default h
        # must not filter them out
        result = baseline.search("gdp by country", k=3)
        assert len(result) == 3

    def test_unindexed_raises(self, baseline):
        fresh = make_baseline(baseline.name)
        with pytest.raises(NotFittedError):
            fresh.search("x")


class TestMakeBaseline:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_baseline("bogus")


class TestLexicalFeatures:
    def test_feature_matrix_shape(self, tiny_relations):
        ex = LexicalFeatureExtractor().index(tiny_relations)
        features = ex.features("vaccination europe")
        assert features.shape == (3, len(FEATURE_NAMES))

    def test_caption_overlap_detected(self, tiny_relations):
        ex = LexicalFeatureExtractor().index(tiny_relations)
        features = ex.features("football league")
        cap_idx = FEATURE_NAMES.index("caption_overlap")
        assert features[1, cap_idx] == 2  # both words in football caption
        assert features[0, cap_idx] == 0

    def test_exact_phrase_flag(self, tiny_relations):
        ex = LexicalFeatureExtractor().index(tiny_relations)
        features = ex.features("football league")
        phrase_idx = FEATURE_NAMES.index("caption_exact_phrase")
        assert features[1, phrase_idx] == 1.0

    def test_numeric_fraction_feature(self, tiny_relations):
        ex = LexicalFeatureExtractor().index(tiny_relations)
        features = ex.features("anything")
        frac_idx = FEATURE_NAMES.index("numeric_fraction")
        # economy table has GDP + Year numeric columns
        assert features[2, frac_idx] > features[1, frac_idx]


class TestMDR:
    def test_weight_fitting_improves_or_keeps_map(self, tiny_federation, engine):
        mdr = make_baseline("mdr")
        mdr.index_federation(tiny_federation, engine.embeddings)
        weights_before = dict(mdr.field_weights)
        mdr.fit(TRAIN_PAIRS)
        assert set(mdr.field_weights) == set(weights_before)
        assert sum(mdr.field_weights.values()) == pytest.approx(1.0)


class TestWS:
    def test_untrained_fallback_works(self, tiny_federation, engine):
        ws = make_baseline("ws")
        ws.index_federation(tiny_federation, engine.embeddings)
        assert not ws.is_trained
        assert ws.search("football league", k=1).top().relation_id == "football/football"

    def test_training_flag(self, tiny_federation, engine):
        ws = make_baseline("ws")
        ws.index_federation(tiny_federation, engine.embeddings)
        ws.fit(TRAIN_PAIRS)
        assert ws.is_trained


class TestTCS:
    def test_untrained_fallback(self, tiny_federation, engine):
        tcs = make_baseline("tcs")
        tcs.index_federation(tiny_federation, engine.embeddings)
        assert not tcs.is_trained
        assert len(tcs.search("football", k=2)) == 2


class TestAdH:
    def test_truncation_ratio_recorded(self, tiny_federation, engine):
        adh = AdHocTableRetrieval(max_tokens=8)
        adh.index_federation(tiny_federation, engine.embeddings)
        assert all(0 < r <= 1 for r in adh.truncation_ratio_)
        # 8-token budget must truncate our ~15-token tables
        assert min(adh.truncation_ratio_) < 1.0

    def test_selector_validation(self):
        with pytest.raises(ValueError):
            AdHocTableRetrieval(selectors=("bogus",))
        with pytest.raises(ValueError):
            AdHocTableRetrieval(max_tokens=2)

    def test_larger_budget_keeps_more(self, tiny_federation, engine):
        small = AdHocTableRetrieval(max_tokens=8)
        small.index_federation(tiny_federation, engine.embeddings)
        large = AdHocTableRetrieval(max_tokens=64)
        large.index_federation(tiny_federation, engine.embeddings)
        assert np.mean(large.truncation_ratio_) >= np.mean(small.truncation_ratio_)


class TestTML:
    def test_budget_shrinks_with_corpus(self, tiny_federation, engine):
        tml = TableMeetsLLM(context_window=30, min_table_tokens=4, max_table_tokens=64)
        tml.index_federation(tiny_federation, engine.embeddings)
        assert tml.table_token_budget == 10  # 30 // 3 relations
        assert tml.truncation_kept_ < 1.0

    def test_budget_clamped(self, tiny_federation, engine):
        tml = TableMeetsLLM(context_window=10_000, max_table_tokens=32)
        tml.index_federation(tiny_federation, engine.embeddings)
        assert tml.table_token_budget == 32

    def test_serialization_format(self, tiny_relations):
        text = TableMeetsLLM.serialize(tiny_relations[0])
        assert "| Country | Vaccine | Year |" in text
        assert text.startswith("vaccination campaign europe")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TableMeetsLLM(context_window=2, min_table_tokens=8)
        with pytest.raises(ValueError):
            TableMeetsLLM(min_table_tokens=0)
