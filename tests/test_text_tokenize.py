"""Unit tests for repro.text.tokenize."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    Tokenizer,
    char_ngrams,
    is_numeric_token,
    normalize_text,
    sentence_split,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Hello WORLD") == "hello world"

    def test_strips_accents(self):
        assert normalize_text("Café Zürich") == "cafe zurich"

    def test_collapses_whitespace(self):
        assert normalize_text("  a \t b\n c ") == "a b c"

    def test_empty(self):
        assert normalize_text("") == ""


class TestSentenceSplit:
    def test_basic_split(self):
        assert sentence_split("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_no_terminal_punctuation(self):
        assert sentence_split("just one fragment") == ["just one fragment"]

    def test_empty(self):
        assert sentence_split("") == []


class TestIsNumericToken:
    @pytest.mark.parametrize("token", ["42", "3.14", "1,000", "2021"])
    def test_numeric(self, token):
        assert is_numeric_token(token)

    @pytest.mark.parametrize("token", ["abc", "2021-01-01", "x1", "", "1e5"])
    def test_not_numeric(self, token):
        assert not is_numeric_token(token)


class TestCharNgrams:
    def test_boundary_markers(self):
        grams = char_ngrams("cat", 2, 3)
        assert "<c" in grams and "t>" in grams
        assert "cat" in grams

    def test_short_token_skips_large_n(self):
        # token "ab" -> marked "<ab>", so only n < 4 grams exist
        grams = char_ngrams("ab", 3, 5)
        assert all(len(g) <= 4 for g in grams)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            char_ngrams("cat", 3, 2)

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=12))
    def test_all_grams_within_bounds(self, token):
        grams = char_ngrams(token, 3, 4)
        assert all(3 <= len(g) <= 4 for g in grams)


class TestTokenizer:
    def test_basic(self):
        assert Tokenizer().tokenize("Hello, World!") == ["hello", "world"]

    def test_keeps_hyphenated_and_dates(self):
        tokens = Tokenizer().tokenize("COVID-19 on 2021-01-01")
        assert "covid-19" in tokens
        assert "2021-01-01" in tokens

    def test_stopword_removal(self):
        tokens = Tokenizer(remove_stopwords=True).tokenize("the cat is on a mat")
        assert "the" not in tokens and "cat" in tokens

    def test_min_token_length(self):
        tokens = Tokenizer(min_token_length=3).tokenize("a bb ccc dddd")
        assert tokens == ["ccc", "dddd"]

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            Tokenizer(min_token_length=0)

    def test_tokenize_many_lazy(self):
        out = list(Tokenizer().tokenize_many(["a b", "c"]))
        assert out == [["a", "b"], ["c"]]

    @given(st.text(max_size=100))
    def test_deterministic(self, text):
        tok = Tokenizer()
        assert tok.tokenize(text) == tok.tokenize(text)

    @given(st.text(max_size=100))
    def test_tokens_are_normalized(self, text):
        for token in Tokenizer().tokenize(text):
            assert token == token.lower()
            assert " " not in token
