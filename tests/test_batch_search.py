"""Batched serving: equivalence with sequential search, workers, metrics.

The contract under test is the one the engine promises: for every
method, ``search_batch(qs)`` ranks exactly the relations that
``[search(q) for q in qs]`` ranks, in the same order, with the same
scores up to BLAS reduction order (batched kernels sum the very same
products, but matrix-matrix and matrix-vector kernels may order the
reductions differently).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.engine import DiscoveryEngine
from repro.core.results import BatchResult, same_ranking

METHODS = ("exs", "anns", "cts")


def score_tol(engine) -> float:
    """Sequential-vs-batched score tolerance for the engine's dtype.

    At float64 the batched kernels sum the very same products as the
    sequential ones, so 1e-9 holds.  At float32 (the default) BLAS's
    matrix-vector (sequential) and matrix-matrix (batched) kernels
    order the reductions differently; at d≈100 the observed divergence
    is ~1.5e-5, so we allow 1e-4 while still requiring identical
    rankings.
    """
    return 1e-9 if engine.dtype == np.float64 else 1e-4

QUERIES = [
    "covid vaccine europe",
    "football cup results",
    "gdp economy germany",
    "hospital admissions 2021",
    "comirnaty doses",
]

#: Word pool for hypothesis-generated keyword queries: mixes terms that
#: hit the COVID federation, miss it, and collide across relations.
WORDS = [
    "covid",
    "vaccine",
    "comirnaty",
    "germany",
    "france",
    "football",
    "league",
    "gdp",
    "economy",
    "2021",
    "hospital",
    "doses",
    "zebra",
    "quasar",
]

query_lists = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=4).map(" ".join),
    min_size=1,
    max_size=6,
)


def assert_batch_matches_sequential(engine, queries, method, k=10, h=0.0, workers=1):
    tol = score_tol(engine)
    sequential = [engine.search(q, method=method, k=k, h=h) for q in queries]
    batched = engine.search_batch(queries, method=method, k=k, h=h, workers=workers)
    assert len(batched) == len(sequential)
    for seq, bat in zip(sequential, batched):
        assert bat.query == seq.query
        assert bat.method == seq.method
        assert bat.relation_ids() == seq.relation_ids()
        for m_seq, m_bat in zip(seq.matches, bat.matches):
            assert m_bat.score == pytest.approx(m_seq.score, abs=tol)
        assert same_ranking(seq, bat, score_tol=tol)


@pytest.mark.parametrize("method", METHODS)
def test_batch_equals_sequential(indexed_engine, method):
    assert_batch_matches_sequential(indexed_engine, QUERIES, method)


@pytest.mark.parametrize("method", METHODS)
def test_batch_equals_sequential_with_workers(indexed_engine, method):
    assert_batch_matches_sequential(indexed_engine, QUERIES, method, workers=3)


@pytest.mark.parametrize("method", METHODS)
def test_batch_respects_k_and_threshold(indexed_engine, method):
    assert_batch_matches_sequential(indexed_engine, QUERIES, method, k=2, h=0.15)


@pytest.mark.parametrize("method", METHODS)
@settings(max_examples=12, deadline=None)
@given(queries=query_lists)
def test_batch_equivalence_property(indexed_engine, method, queries):
    assert_batch_matches_sequential(indexed_engine, queries, method)


@pytest.mark.parametrize("method", METHODS)
@settings(max_examples=6, deadline=None)
@given(queries=query_lists)
def test_batch_equivalence_property_parallel(indexed_engine, method, queries):
    assert_batch_matches_sequential(indexed_engine, queries, method, workers=2)


def test_empty_batch(indexed_engine):
    result = indexed_engine.search_batch([], method="exs")
    assert isinstance(result, BatchResult)
    assert list(result) == []
    assert result.queries_per_second == 0.0


def test_empty_batch_still_counted(covid_fed):
    # Regression: the empty-batch early return used to skip the
    # method-level batch counter, so engine.batches and exs.batches
    # disagreed after an empty call.
    engine = DiscoveryEngine(dim=64)
    engine.index(covid_fed)
    engine.search_batch([], method="exs")
    engine.search_batch(["covid"], method="exs")
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.batches"] == 2
    assert counters["exs.batches"] == 2
    assert counters["engine.queries"] == counters["exs.queries"] == 1


def test_workers_must_be_positive(indexed_engine):
    with pytest.raises(ValueError):
        indexed_engine.search_batch(QUERIES, method="exs", workers=0)


def test_batch_result_reports_throughput(indexed_engine):
    result = indexed_engine.search_batch(QUERIES, method="exs")
    assert result.elapsed_ms > 0.0
    assert result.queries_per_second > 0.0
    # Per-query elapsed is the amortized share of the batch wall clock.
    for item in result:
        assert item.elapsed_ms == pytest.approx(result.elapsed_ms / len(result))


def test_duplicate_queries_in_one_batch(indexed_engine):
    queries = ["covid vaccine", "covid vaccine", "football"]
    batched = indexed_engine.search_batch(queries, method="exs", k=5)
    assert batched[0].relation_ids() == batched[1].relation_ids()
    assert [r.query for r in batched] == queries


class TestMetricsPopulation:
    @pytest.fixture(scope="class")
    def fresh_engine(self, covid_fed):
        engine = DiscoveryEngine(
            dim=96,
            method_params={
                "cts": {"min_cluster_size": 4, "umap_neighbors": 5, "umap_epochs": 30},
                "anns": {"n_subvectors": 8, "n_centroids": 16},
            },
        )
        return engine.index(covid_fed)

    def test_search_populates_counters_and_stages(self, fresh_engine):
        fresh_engine.search("covid vaccine", method="exs")
        snap = fresh_engine.metrics.snapshot()
        assert snap["counters"]["engine.queries"] >= 1
        assert snap["counters"]["exs.queries"] >= 1
        for stage in ("exs.encode", "exs.scan", "exs.rank", "exs.latency_ms"):
            assert snap["stages"][stage]["count"] >= 1

    def test_batch_populates_per_stage_percentiles(self, fresh_engine):
        fresh_engine.search_batch(QUERIES, method="cts")
        snap = fresh_engine.metrics.snapshot()
        assert snap["counters"]["engine.batches"] >= 1
        assert snap["counters"]["cts.queries"] >= len(QUERIES)
        for stage in ("cts.encode", "cts.route", "cts.scan", "cts.rank"):
            summary = snap["stages"][stage]
            assert summary["count"] >= 1
            assert 0.0 <= summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
            assert summary["p99_ms"] <= summary["max_ms"]

    def test_vectordb_metrics_flow_into_engine_registry(self, fresh_engine):
        fresh_engine.search_batch(QUERIES, method="anns")
        snap = fresh_engine.metrics.snapshot()
        # ANNS probes the HNSW-indexed values collection per query.
        assert snap["counters"]["vectordb.index_probes"] >= len(QUERIES)
        assert snap["counters"]["vectordb.searches"] >= len(QUERIES)
        assert snap["stages"]["vectordb.scan"]["count"] >= 1

    def test_format_table_is_printable(self, fresh_engine):
        fresh_engine.search_batch(QUERIES, method="exs")
        table = fresh_engine.metrics.format_table()
        assert "engine.queries" in table
        assert "exs.scan" in table
