"""Tests for the ANN substrate: brute force, HNSW, PQ, IVF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import BruteForceIndex, HNSWIndex, IVFFlatIndex, PQIndex, ProductQuantizer
from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    EmptyIndexError,
    NotFittedError,
)
from repro.linalg.distances import Metric


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(7).standard_normal((400, 16))


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(8).standard_normal((10, 16))


def recall(hits, truth):
    got = {h.index for h in hits}
    want = {h.index for h in truth}
    return len(got & want) / len(want)


class TestBruteForce:
    @pytest.mark.parametrize("metric", [Metric.COSINE, Metric.EUCLIDEAN])
    def test_top1_is_self(self, points, metric):
        # (not true for dot product, where longer vectors can win)
        index = BruteForceIndex(metric=metric).build(points)
        assert index.search(points[5], 1)[0].index == 5

    def test_dot_metric_prefers_longer_vectors(self, points):
        index = BruteForceIndex(metric=Metric.DOT).build(points)
        q = points[5]
        top = index.search(q, 1)[0]
        assert top.score >= float(q @ q) - 1e-9

    def test_scores_descending(self, points, queries):
        index = BruteForceIndex().build(points)
        hits = index.search(queries[0], 10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_search_batch_matches_single(self, points, queries):
        index = BruteForceIndex().build(points)
        batched = index.search_batch(queries[:3], 5)
        for q, hits in zip(queries[:3], batched):
            assert [h.index for h in hits] == [h.index for h in index.search(q, 5)]

    def test_empty_index(self):
        with pytest.raises(EmptyIndexError):
            BruteForceIndex().build(np.empty((0, 4))).search(np.zeros(4), 1)

    def test_dim_mismatch(self, points):
        index = BruteForceIndex().build(points)
        with pytest.raises(DimensionMismatchError):
            index.search(np.zeros(3), 1)


class TestHNSW:
    def test_high_recall_vs_exact(self, points, queries):
        exact = BruteForceIndex().build(points)
        hnsw = HNSWIndex(m=8, ef_construction=80, ef_search=80, seed=0).build(points)
        recalls = [
            recall(hnsw.search(q, 10), exact.search(q, 10)) for q in queries
        ]
        assert float(np.mean(recalls)) >= 0.85

    def test_euclidean_metric(self, points):
        hnsw = HNSWIndex(metric=Metric.EUCLIDEAN, m=8, ef_construction=40).build(points)
        top = hnsw.search(points[3], 1)[0]
        assert top.index == 3
        assert top.score == pytest.approx(0.0, abs=1e-9)

    def test_incremental_add(self, points):
        hnsw = HNSWIndex(m=8, ef_construction=40, seed=1).build(points[:200])
        hnsw.add(points[200:])
        assert hnsw.size == 400
        assert hnsw.search(points[300], 1)[0].index == 300

    def test_add_to_empty_builds(self, points):
        hnsw = HNSWIndex(m=8, ef_construction=40)
        hnsw.add(points[:50])
        assert hnsw.size == 50

    def test_add_dim_mismatch(self, points):
        hnsw = HNSWIndex(m=8, ef_construction=40).build(points)
        with pytest.raises(ConfigurationError):
            hnsw.add(np.zeros((1, 3)))

    def test_deterministic(self, points, queries):
        a = HNSWIndex(m=8, ef_construction=40, seed=3).build(points)
        b = HNSWIndex(m=8, ef_construction=40, seed=3).build(points)
        for q in queries[:3]:
            assert [h.index for h in a.search(q, 5)] == [h.index for h in b.search(q, 5)]

    def test_duplicate_points_searchable(self):
        # duplicates must not fragment the graph
        base = np.random.default_rng(0).standard_normal((20, 8))
        dup = np.vstack([base, base, base])
        hnsw = HNSWIndex(m=4, ef_construction=20, ef_search=70).build(dup)
        hits = hnsw.search(base[0], 60)
        assert len(hits) >= 30

    def test_ef_override(self, points, queries):
        hnsw = HNSWIndex(m=8, ef_construction=60, ef_search=4).build(points)
        few = hnsw.search(queries[0], 10, ef=10)
        many = hnsw.search(queries[0], 10, ef=200)
        assert len(few) == len(many) == 10

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            HNSWIndex(m=1)
        with pytest.raises(ConfigurationError):
            HNSWIndex(m=8, ef_construction=4)
        with pytest.raises(ConfigurationError):
            HNSWIndex(ef_search=0)


class TestProductQuantizer:
    def test_roundtrip_reduces_error_vs_random(self, points):
        pq = ProductQuantizer(n_subvectors=4, n_centroids=32).fit(points)
        codes = pq.encode(points)
        recon = pq.decode(codes)
        err = np.linalg.norm(points - recon)
        rand_err = np.linalg.norm(points - np.roll(points, 1, axis=0))
        assert err < rand_err

    def test_codes_shape_and_dtype(self, points):
        pq = ProductQuantizer(n_subvectors=8, n_centroids=16).fit(points)
        codes = pq.encode(points[:10])
        assert codes.shape == (10, 8)
        assert codes.dtype == np.uint8

    def test_adc_matches_decoded_inner_product(self, points):
        pq = ProductQuantizer(n_subvectors=4, n_centroids=16).fit(points)
        codes = pq.encode(points[:20])
        q = points[0]
        table = pq.adc_inner_product_table(q)
        adc = pq.adc_scores(table, codes)
        exact = pq.decode(codes) @ q
        np.testing.assert_allclose(adc, exact, atol=1e-9)

    def test_adc_l2_matches_decoded(self, points):
        pq = ProductQuantizer(n_subvectors=4, n_centroids=16).fit(points)
        codes = pq.encode(points[:20])
        q = points[1]
        table = pq.adc_l2_table(q)
        adc = pq.adc_scores(table, codes)
        exact = np.sum((pq.decode(codes) - q) ** 2, axis=1)
        np.testing.assert_allclose(adc, exact, atol=1e-9)

    def test_dim_not_divisible(self, points):
        with pytest.raises(ConfigurationError):
            ProductQuantizer(n_subvectors=5).fit(points)  # 16 % 5 != 0

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            ProductQuantizer().encode(np.zeros((1, 16)))

    def test_compression_ratio(self):
        assert ProductQuantizer(n_subvectors=8).compression_ratio(768) == 768.0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ProductQuantizer(n_subvectors=0)
        with pytest.raises(ConfigurationError):
            ProductQuantizer(n_centroids=1000)


class TestPQIndex:
    def test_reasonable_recall(self, points, queries):
        exact = BruteForceIndex().build(points)
        pq = PQIndex(n_subvectors=8, n_centroids=64).build(points)
        recalls = [recall(pq.search(q, 20), exact.search(q, 20)) for q in queries]
        assert float(np.mean(recalls)) >= 0.4

    def test_euclidean(self, points):
        pq = PQIndex(metric=Metric.EUCLIDEAN, n_subvectors=4, n_centroids=64).build(points)
        hits = pq.search(points[2], 5)
        assert hits[0].score <= 0  # negated distance


class TestIVF:
    def test_more_probes_more_recall(self, points, queries):
        exact = BruteForceIndex().build(points)
        low = IVFFlatIndex(n_cells=16, n_probe=1, seed=0).build(points)
        high = IVFFlatIndex(n_cells=16, n_probe=16, seed=0).build(points)
        r_low = np.mean([recall(low.search(q, 10), exact.search(q, 10)) for q in queries])
        r_high = np.mean([recall(high.search(q, 10), exact.search(q, 10)) for q in queries])
        assert r_high >= r_low
        assert r_high == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            IVFFlatIndex(n_cells=0)
        with pytest.raises(ConfigurationError):
            IVFFlatIndex(n_probe=0)


@given(st.integers(2, 40), st.integers(1, 10))
@settings(max_examples=15, deadline=None)
def test_hnsw_returns_k_unique(n, k):
    pts = np.random.default_rng(n).standard_normal((n, 4))
    hnsw = HNSWIndex(m=4, ef_construction=16, ef_search=max(16, k)).build(pts)
    hits = hnsw.search(pts[0], k)
    ids = [h.index for h in hits]
    assert len(ids) == len(set(ids)) <= min(k, n)
