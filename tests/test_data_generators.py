"""Tests for the synthetic corpora, queries and qrels generators."""

import pytest

from repro.data import (
    DatasetScale,
    QueryCategory,
    covid_federation,
    generate_edp_corpus,
    generate_wikitables_corpus,
)
from repro.data.queries import QuerySource
from repro.data.synthesis import CorpusSynthesizer
from repro.data.topics import TOPICS, topic_by_name
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def wiki():
    return generate_wikitables_corpus(n_tables=80, pairs_target=600)


class TestWikiTablesCorpus:
    def test_sizes(self, wiki):
        assert len(wiki.relations) == 80
        assert len(wiki.queries) == 60
        assert wiki.qrels.n_pairs == 600

    def test_numeric_fraction_near_paper(self):
        corpus = generate_wikitables_corpus(n_tables=150)
        assert 0.20 <= corpus.numeric_cell_fraction <= 0.34  # paper: 26.9%

    def test_query_categories_balanced(self, wiki):
        for category in QueryCategory:
            assert len(wiki.queries_of(category)) == 20

    def test_query_lengths_respect_taxonomy(self, wiki):
        for spec in wiki.queries:
            if spec.category is QueryCategory.SHORT:
                assert spec.n_keywords <= 5  # <=3 keywords, facets add tokens
            elif spec.category is QueryCategory.LONG:
                assert 30 < spec.n_keywords <= 300

    def test_query_sources_alternate(self, wiki):
        sources = {s.source for s in wiki.queries}
        assert sources == {QuerySource.QS1, QuerySource.QS2}

    def test_deterministic(self):
        a = generate_wikitables_corpus(n_tables=40, pairs_target=200)
        b = generate_wikitables_corpus(n_tables=40, pairs_target=200)
        assert [r.caption for r in a.relations] == [r.caption for r in b.relations]
        assert [q.text for q in a.queries] == [q.text for q in b.queries]
        assert a.qrels.pairs() == b.qrels.pairs()

    def test_seed_changes_content(self):
        a = generate_wikitables_corpus(n_tables=40, pairs_target=200, seed=0)
        b = generate_wikitables_corpus(n_tables=40, pairs_target=200, seed=1)
        assert [q.text for q in a.queries] != [q.text for q in b.queries]

    def test_facets_cover_all_topics(self, wiki):
        topics = {facet[0] for facet in wiki.table_facets.values()}
        assert topics == {t.name for t in TOPICS}


class TestGrades:
    def test_grade_rules(self, wiki):
        spec = next(q for q in wiki.queries if q.region and q.year)
        grade = CorpusSynthesizer.grade
        assert grade(spec, spec.topic, spec.region, spec.year) == 2
        other_region = "asia" if spec.region != "asia" else "africa"
        assert grade(spec, spec.topic, other_region, spec.year) == 1
        assert grade(spec, spec.topic, spec.region, spec.year + 1 if spec.year < 2023 else spec.year - 1) == 1
        unrelated = next(t.name for t in TOPICS if t.name != spec.topic)
        assert grade(spec, unrelated, spec.region, spec.year) in (0, 1)

    def test_facetless_query_grades_whole_topic(self, wiki):
        grade = CorpusSynthesizer.grade
        spec = next((q for q in wiki.queries if not q.is_facet_specific()), None)
        if spec is not None:
            assert grade(spec, spec.topic, "europe", 2015) == 2

    def test_qrels_match_latent_facets(self, wiki):
        for query, relation_id, judged in wiki.qrels.pairs()[:300]:
            spec = next(s for s in wiki.queries if s.text == query)
            topic, region, year = wiki.table_facets[relation_id]
            assert judged == CorpusSynthesizer.grade(spec, topic, region, year)

    def test_every_query_has_relevant_tables(self, wiki):
        for judgments in wiki.qrels:
            assert judgments.n_relevant > 0


class TestPartitions:
    def test_partition_sizes_monotone(self, wiki):
        sd = wiki.partition_relations(DatasetScale.SMALL)
        md = wiki.partition_relations(DatasetScale.MODERATE)
        ld = wiki.partition_relations(DatasetScale.LARGE)
        assert len(sd) < len(md) < len(ld) == 80

    def test_partitions_nested(self, wiki):
        sd = {r.name for r in wiki.partition_relations(DatasetScale.SMALL)}
        md = {r.name for r in wiki.partition_relations(DatasetScale.MODERATE)}
        assert sd <= md

    def test_all_topics_present_at_every_scale(self, wiki):
        for scale in DatasetScale:
            topics = {
                wiki.table_facets[wiki.qualified_id(r)][0]
                for r in wiki.partition_relations(scale)
            }
            assert topics == {t.name for t in TOPICS}

    def test_scaled_qrels_subset(self, wiki):
        sd_qrels = wiki.qrels_for(DatasetScale.SMALL)
        sd_ids = {wiki.qualified_id(r) for r in wiki.partition_relations(DatasetScale.SMALL)}
        for _, relation_id, _ in sd_qrels.pairs():
            assert relation_id in sd_ids

    def test_federation_cached(self, wiki):
        assert wiki.federation(DatasetScale.SMALL) is wiki.federation(DatasetScale.SMALL)

    def test_qrels_of_category_and_scale(self, wiki):
        scoped = wiki.qrels_of(QueryCategory.SHORT, DatasetScale.MODERATE)
        sq_texts = set(wiki.query_texts(QueryCategory.SHORT))
        assert set(scoped.queries()) <= sq_texts


class TestEDPCorpus:
    def test_shape(self):
        corpus = generate_edp_corpus(n_tables=60, pairs_target=400)
        assert len(corpus.relations) == 60
        assert 0.45 <= corpus.numeric_cell_fraction <= 0.65  # paper: 55.3%

    def test_metadata_fields(self):
        corpus = generate_edp_corpus(n_tables=40, pairs_target=200)
        assert all("publisher" in r.metadata for r in corpus.relations)


class TestSynthesizerValidation:
    def test_too_few_tables(self):
        with pytest.raises(DataGenerationError):
            CorpusSynthesizer("x", n_tables=3)

    def test_too_few_queries(self):
        with pytest.raises(DataGenerationError):
            CorpusSynthesizer("x", n_tables=50, n_queries=2)

    def test_bad_date_style(self):
        with pytest.raises(DataGenerationError):
            CorpusSynthesizer("x", n_tables=50, date_style="never")

    def test_bad_caption_noise(self):
        with pytest.raises(DataGenerationError):
            CorpusSynthesizer("x", n_tables=50, caption_noise=2.0)

    def test_role_split_disjoint_for_rich_concepts(self):
        synth = CorpusSynthesizer("x", n_tables=50)
        table_terms = set(synth._terms("covid_vaccine", role="table"))
        query_terms = set(synth._terms("covid_vaccine", role="query"))
        assert not (table_terms & query_terms)


class TestTopics:
    def test_lookup(self):
        assert topic_by_name("covid_vaccination").name == "covid_vaccination"
        with pytest.raises(KeyError):
            topic_by_name("nope")

    def test_related_topics_exist(self):
        names = {t.name for t in TOPICS}
        for topic in TOPICS:
            assert set(topic.related) <= names


class TestCovidFederation:
    def test_contents(self):
        fed = covid_federation()
        ids = [rid for rid, _ in fed.relations()]
        assert "WHO/WHO" in ids and len(ids) == 6

    def test_without_distractors(self):
        assert covid_federation(include_distractors=False).num_relations == 3

    def test_keyword_covid_only_in_ecdc(self):
        fed = covid_federation(include_distractors=False)
        containing = [
            rid
            for rid, rel in fed.relations()
            if any("covid" in v.lower() for v in rel.values())
        ]
        assert containing == ["ECDC/ECDC"]
