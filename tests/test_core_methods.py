"""Tests for ExS, ANNS, CTS and the DiscoveryEngine on the Figure 1 federation.

These are the paper's own acceptance criteria: for the query "COVID",
keyword search would return only ECDC, but all three semantic methods
must surface WHO and CDC as well — above unrelated distractor tables.
"""

import numpy as np
import pytest

from repro.core import DiscoveryEngine
from repro.core.anns import ANNSearch
from repro.core.cts import ClusteredTargetedSearch
from repro.core.exhaustive import ExhaustiveSearch
from repro.errors import ConfigurationError, NotFittedError

COVID_TRIO = {"WHO/WHO", "CDC/CDC", "ECDC/ECDC"}


@pytest.mark.parametrize("method", ["exs", "anns", "cts"])
class TestFigure1Semantics:
    def test_covid_query_finds_all_three_sources(self, indexed_engine, method):
        result = indexed_engine.search("COVID", method=method, k=6, h=-1.0)
        top3 = set(result.relation_ids()[:3])
        assert top3 == COVID_TRIO

    def test_scores_descending(self, indexed_engine, method):
        result = indexed_engine.search("vaccine", method=method, k=6, h=-1.0)
        scores = [m.score for m in result.matches]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_filters(self, indexed_engine, method):
        everything = indexed_engine.search("COVID", method=method, k=6, h=-1.0)
        strict = indexed_engine.search("COVID", method=method, k=6, h=0.15)
        assert len(strict) <= len(everything)
        assert all(m.score >= 0.15 for m in strict.matches)

    def test_top_k_respected(self, indexed_engine, method):
        result = indexed_engine.search("COVID", method=method, k=2, h=-1.0)
        assert len(result) <= 2

    def test_elapsed_recorded(self, indexed_engine, method):
        result = indexed_engine.search("COVID", method=method)
        assert result.elapsed_ms > 0

    def test_unrelated_query_ranks_distractor_first(self, indexed_engine, method):
        result = indexed_engine.search("football trophy", method=method, k=3, h=-1.0)
        assert result.top().relation_id == "FootballResults/FootballResults"


class TestExhaustiveSearch:
    def test_mean_equals_manual_average(self, indexed_engine):
        exs = indexed_engine.method("exs")
        q = indexed_engine.embeddings.encode_query("COVID")
        rel = indexed_engine.embeddings.relations[0]
        expected = float(np.average(rel.vectors @ q, weights=rel.counts))
        match = {
            m.relation_id: m.score for m in exs.search("COVID", k=10, h=-1.0).matches
        }[rel.relation_id]
        assert match == pytest.approx(expected, abs=1e-6)

    def test_max_mean_aggregate(self, indexed_engine):
        exs = ExhaustiveSearch(aggregate="max_mean", top_fraction=0.2)
        exs.index(indexed_engine.embeddings)
        result = exs.search("COVID", k=3, h=-1.0)
        # focusing on top cells should score relations higher than full mean
        full = indexed_engine.method("exs").search("COVID", k=3, h=-1.0)
        assert result.top().score >= full.top().score

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExhaustiveSearch(aggregate="bogus")
        with pytest.raises(ValueError):
            ExhaustiveSearch(top_fraction=0.0)

    def test_unindexed(self):
        with pytest.raises(NotFittedError):
            ExhaustiveSearch().search("x")


class TestANNSearch:
    def test_index_kinds(self, indexed_engine):
        for kind in ("exact", "hnsw"):
            anns = ANNSearch(index_kind=kind, n_candidates=64)
            anns.index(indexed_engine.embeddings)
            result = anns.search("COVID", k=3, h=-1.0)
            assert set(result.relation_ids()) & COVID_TRIO

    def test_deduplicated_storage(self, indexed_engine):
        anns = indexed_engine.method("anns")
        collection = anns.database.get_collection("values")
        values = [p.payload["value"] for p in collection.scroll()]
        assert len(values) == len(set(values))

    def test_owners_cover_duplicates(self, indexed_engine):
        anns = indexed_engine.method("anns")
        collection = anns.database.get_collection("values")
        # "2021-01-01" appears in WHO, CDC and ECDC
        shared = [p for p in collection.scroll() if p.payload["value"] == "2021-01-01"]
        assert len(shared) == 1
        owner_rels = {rel for rel, _, _ in shared[0].payload["owners"]}
        assert owner_rels == COVID_TRIO

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            ANNSearch(n_candidates=0)


class TestCTS:
    def test_cluster_structure_exposed(self, indexed_engine):
        cts = indexed_engine.method("cts")
        assert cts.n_clusters >= 1
        sizes = cts.cluster_sizes()
        assert sum(sizes.values()) == indexed_engine.embeddings.total_vectors
        assert cts.n_noise_points >= 0

    def test_medoid_collection_in_original_space(self, indexed_engine):
        cts = indexed_engine.method("cts")
        medoids = cts.database.get_collection("medoids")
        assert medoids.dim == indexed_engine.embeddings.dim
        assert len(medoids) == cts.n_clusters

    def test_cluster_collections_in_reduced_space(self, indexed_engine):
        cts = indexed_engine.method("cts")
        sizes = cts.cluster_sizes()
        for cid in sizes:
            col = cts.database.get_collection(f"cluster_{cid}")
            assert len(col) == sizes[cid]
            assert col.dim < indexed_engine.embeddings.dim

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ClusteredTargetedSearch(top_clusters=0)
        with pytest.raises(ConfigurationError):
            ClusteredTargetedSearch(per_cluster_candidates=0)
        with pytest.raises(ConfigurationError):
            ClusteredTargetedSearch(evidence_size=0)


class TestDiscoveryEngine:
    def test_methods_cached(self, indexed_engine):
        assert indexed_engine.method("exs") is indexed_engine.method("exs")

    def test_search_all_methods(self, indexed_engine):
        results = indexed_engine.search_all_methods("COVID", k=3, h=-1.0)
        assert set(results) == {"exs", "anns", "cts"}

    def test_unknown_method(self, indexed_engine):
        with pytest.raises(ConfigurationError):
            indexed_engine.search("x", method="magic")

    def test_unknown_method_params(self):
        with pytest.raises(ConfigurationError):
            DiscoveryEngine(method_params={"nope": {}})

    def test_unindexed_engine(self):
        with pytest.raises(NotFittedError):
            DiscoveryEngine(dim=32).search("x")

    def test_reindex_clears_methods(self, covid_fed):
        engine = DiscoveryEngine(dim=64)
        engine.index(covid_fed)
        first = engine.method("exs")
        engine.index(covid_fed)
        assert engine.method("exs") is not first


class TestCTSQueryProjection:
    def test_reduce_query_lands_in_reduced_space(self, indexed_engine):
        import numpy as np

        cts = indexed_engine.method("cts")
        q = indexed_engine.embeddings.encode_query("covid vaccine")
        projected = cts.reduce_query(q)
        medoids = cts.database.get_collection("medoids")
        reduced_dim = cts.database.get_collection(
            f"cluster_{sorted(cts.cluster_sizes())[0]}"
        ).dim
        assert projected.shape == (reduced_dim,)
        assert np.all(np.isfinite(projected))

    def test_reduce_query_deterministic(self, indexed_engine):
        import numpy as np

        cts = indexed_engine.method("cts")
        q = indexed_engine.embeddings.encode_query("football")
        np.testing.assert_array_equal(cts.reduce_query(q), cts.reduce_query(q))


class TestEvenChunks:
    def test_zero_items_yields_no_chunks(self):
        from repro.core.base import even_chunks

        assert even_chunks(0, 4) == []

    def test_more_chunks_than_items(self):
        from repro.core.base import even_chunks

        chunks = even_chunks(3, 8)
        assert chunks == [range(0, 1), range(1, 2), range(2, 3)]

    def test_partition_is_exact_and_balanced(self):
        from repro.core.base import even_chunks

        chunks = even_chunks(10, 3)
        assert [i for c in chunks for i in c] == list(range(10))
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
