"""Fused scan kernels: rank identity, batched ADC, dtype and memory.

The perf work rewired three serving paths — the federation-wide fused
ExS kernel (one GEMM + segment reduction), dtype-preserving vector
storage, and batched ADC for PQ configurations.  These tests pin the
invariant that made the rewiring safe: the fast paths rank *exactly*
what the reference paths rank.

Tolerance model: at float64 fused and per-block scans agree to 1e-9.
At float32 the fused kernel runs one big GEMM where the reference ran
one small GEMM per relation, and BLAS reduction order differs between
gemv/gemm kernels and between matrix shapes, so scores drift by up to
~1e-5 on unit-norm embeddings; rankings must still be identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann.pq import PQIndex, ProductQuantizer
from repro.core.engine import DiscoveryEngine
from repro.core.exhaustive import ExhaustiveSearch
from repro.datamodel.relation import Federation, Relation
from repro.linalg.distances import Metric, cosine_similarity, normalize_rows
from repro.linalg.topk import top_k_indices, top_k_indices_rowwise
from repro.vectordb.collection import Collection, Point
from repro.vectordb.index import HNSWPQIndex

TOPICS = [
    ["vaccine", "dose", "immunity", "booster", "trial"],
    ["league", "striker", "goal", "stadium", "referee"],
    ["gdp", "inflation", "export", "tariff", "budget"],
    ["galaxy", "nebula", "quasar", "orbit", "comet"],
    ["sonata", "violin", "tempo", "chord", "opera"],
    ["glacier", "monsoon", "drought", "humidity", "frost"],
]

QUERIES = ["vaccine booster trial", "league stadium", "gdp export", "quasar orbit"]


def make_relation(slot: int, version: int = 0) -> Relation:
    words = TOPICS[slot % len(TOPICS)]
    tag = f"v{version}"
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure", "Year"],
        [
            [f"{words[r % len(words)]} {tag}", str(100 * slot + r), str(2018 + version)]
            for r in range(3 + slot % 2)
        ],
        caption=f"{words[0]} {words[1]} table {tag}",
    )


def qualified(slot: int) -> str:
    return f"rel{slot}/rel{slot}"


def federation(slots) -> Federation:
    return Federation.from_relations([make_relation(s) for s in slots])


def score_tol(dtype) -> float:
    """1e-9 at float64; float32 pays BLAS kernel-shape reduction drift."""
    return 1e-9 if np.dtype(dtype) == np.float64 else 1e-4


def make_exs_engine(dtype, fused: bool, shards: int = 1, **exs_params) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        dtype=dtype,
        shards=shards,
        method_params={"exs": {"fused": fused, **exs_params}},
    )


def assert_same_batch(a: DiscoveryEngine, b: DiscoveryEngine, tol: float) -> None:
    ra = a.search_batch(QUERIES, method="exs", k=100, h=-1.0)
    rb = b.search_batch(QUERIES, method="exs", k=100, h=-1.0)
    for wa, wb in zip(ra, rb):
        assert wa.relation_ids() == wb.relation_ids()
        for ma, mb in zip(wa.matches, wb.matches):
            assert ma.score == pytest.approx(mb.score, abs=tol)


# -- fused vs per-block ExS ------------------------------------------------


class TestFusedVsPerBlock:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("aggregate", ["mean", "max_mean"])
    def test_batch_rank_identity(self, dtype, aggregate):
        fed = federation(range(8))
        fused = make_exs_engine(dtype, fused=True, aggregate=aggregate).index(fed)
        loop = make_exs_engine(dtype, fused=False, aggregate=aggregate).index(fed)
        assert_same_batch(fused, loop, score_tol(dtype))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_single_query_paths_agree(self, dtype):
        """Per-attribute loop (Algorithm 1), vectorized Q=1 fused kernel
        and the batched fused kernel all rank identically."""
        fed = federation(range(6))
        reference = make_exs_engine(dtype, fused=False).index(fed)
        vectorized = DiscoveryEngine(
            dim=48, dtype=dtype, method_params={"exs": {"vectorized": True}}
        ).index(fed)
        batched = make_exs_engine(dtype, fused=True).index(fed)
        tol = score_tol(dtype)
        for query in QUERIES:
            want = reference.search(query, method="exs", k=100, h=-1.0)
            got = vectorized.search(query, method="exs", k=100, h=-1.0)
            via_batch = batched.search_batch([query], method="exs", k=100, h=-1.0)[0]
            assert want.relation_ids() == got.relation_ids()
            assert want.relation_ids() == via_batch.relation_ids()
            for mw, mg, mb in zip(want.matches, got.matches, via_batch.matches):
                assert mg.score == pytest.approx(mw.score, abs=tol)
                assert mb.score == pytest.approx(mw.score, abs=tol)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_parallel_workers_match_sequential(self, dtype):
        fed = federation(range(8))
        engine = make_exs_engine(dtype, fused=True).index(fed)
        sequential = engine.search_batch(QUERIES, method="exs", k=100, h=-1.0)
        parallel = engine.search_batch(QUERIES, method="exs", k=100, h=-1.0, workers=4)
        for s, p in zip(sequential, parallel):
            assert s.relation_ids() == p.relation_ids()
            for ms, mp in zip(s.matches, p.matches):
                # Same kernel over row sub-ranges: bitwise identical.
                assert ms.score == mp.score

    @pytest.mark.parametrize("shards", [2, 5])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sharded_fused_matches_unsharded_loop(self, shards, dtype):
        fed = federation(range(8))
        loop = make_exs_engine(dtype, fused=False).index(fed)
        sharded = make_exs_engine(dtype, fused=True, shards=shards).index(fed)
        assert_same_batch(sharded, loop, score_tol(dtype))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_delta_sequence_keeps_rank_identity(self, dtype):
        """add/update/remove deltas patch the fused segment bookkeeping
        (offsets + pre-folded weights) exactly like the per-block view."""
        fed = federation(range(5))
        fused = make_exs_engine(dtype, fused=True).index(fed)
        loop = make_exs_engine(dtype, fused=False).index(fed)
        for engine in (fused, loop):
            engine.method("exs")  # build before deltas so indexes patch in place
        steps = [
            ("add", {qualified(8): make_relation(8)}),
            ("update", {qualified(2): make_relation(2, version=1)}),
            ("remove", [qualified(0)]),
            ("add", {qualified(9): make_relation(9), qualified(10): make_relation(10)}),
            ("update", {qualified(8): make_relation(8, version=2)}),
            ("remove", [qualified(3), qualified(9)]),
        ]
        tol = score_tol(dtype)
        for op, payload in steps:
            for engine in (fused, loop):
                getattr(engine, f"{op}_relations")(payload)
            assert_same_batch(fused, loop, tol)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sharded_delta_sequence(self, dtype):
        fed = federation(range(6))
        loop = make_exs_engine(dtype, fused=False).index(fed)
        sharded = make_exs_engine(dtype, fused=True, shards=2).index(fed)
        for engine in (loop, sharded):
            engine.method("exs")
        for engine in (loop, sharded):
            engine.add_relations({qualified(7): make_relation(7)})
            engine.update_relations({qualified(1): make_relation(1, version=1)})
            engine.remove_relations([qualified(4)])
        assert_same_batch(sharded, loop, score_tol(dtype))

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            ExhaustiveSearch(dtype=np.float16)


# -- batched ADC ------------------------------------------------------------


@pytest.fixture()
def pq_vectors(rng) -> np.ndarray:
    return rng.normal(size=(200, 32))


class TestBatchedADC:
    def test_tables_match_single_query_tables(self, rng, pq_vectors):
        pq = ProductQuantizer(n_subvectors=4, n_centroids=16).fit(pq_vectors)
        queries = rng.normal(size=(5, 32))
        ip_tables = pq.adc_inner_product_tables(queries)
        l2_tables = pq.adc_l2_tables(queries)
        assert ip_tables.shape == (5, 4, 16)
        for q in range(5):
            np.testing.assert_array_equal(
                ip_tables[q], pq.adc_inner_product_table(queries[q])
            )
            np.testing.assert_array_equal(l2_tables[q], pq.adc_l2_table(queries[q]))

    def test_scores_batch_matches_per_query_scores(self, rng, pq_vectors):
        pq = ProductQuantizer(n_subvectors=4, n_centroids=16).fit(pq_vectors)
        codes = pq.encode(pq_vectors)
        queries = rng.normal(size=(5, 32))
        tables = pq.adc_inner_product_tables(queries)
        batch = pq.adc_scores_batch(tables, codes)
        assert batch.shape == (5, codes.shape[0])
        for q in range(5):
            np.testing.assert_array_equal(batch[q], pq.adc_scores(tables[q], codes))

    @pytest.mark.parametrize("metric", [Metric.COSINE, Metric.DOT, Metric.EUCLIDEAN])
    def test_pq_index_batch_bitwise_matches_sequential(self, rng, pq_vectors, metric):
        index = PQIndex(metric=metric, n_subvectors=4, n_centroids=16).build(pq_vectors)
        queries = rng.normal(size=(6, 32))
        batched = index.search_batch(queries, k=10)
        for q in range(queries.shape[0]):
            single = index.search(queries[q], k=10)
            assert [h.index for h in single] == [h.index for h in batched[q]]
            assert [h.score for h in single] == [h.score for h in batched[q]]

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_anns_batch_matches_sequential_after_deltas(self, shards):
        """The batched-ADC serving path (HNSW+PQ through
        Collection.search_batch) ranks what per-query serving ranks,
        sharded or not, after a delta sequence."""
        engine = DiscoveryEngine(
            dim=48,
            shards=shards,
            method_params={"anns": {"n_subvectors": 8, "n_centroids": 16}},
        ).index(federation(range(6)))
        engine.method("anns")
        engine.add_relations({qualified(7): make_relation(7)})
        engine.update_relations({qualified(1): make_relation(1, version=1)})
        engine.remove_relations([qualified(4)])
        batched = engine.search_batch(QUERIES, method="anns", k=100, h=-1.0)
        for query, got in zip(QUERIES, batched):
            want = engine.search(query, method="anns", k=100, h=-1.0)
            assert want.relation_ids() == got.relation_ids()
            for mw, mg in zip(want.matches, got.matches):
                assert mg.score == pytest.approx(mw.score, abs=score_tol(np.float32))

    @pytest.mark.parametrize("metric", [Metric.COSINE, Metric.EUCLIDEAN])
    def test_hnswpq_batch_bitwise_matches_sequential(self, rng, pq_vectors, metric):
        index = HNSWPQIndex(
            metric=metric, n_subvectors=4, n_centroids=16, seed=0
        ).build(pq_vectors)
        queries = rng.normal(size=(4, 32))
        batched = index.search_batch(queries, k=8)
        for q in range(queries.shape[0]):
            single = index.search(queries[q], k=8)
            assert [h.index for h in single] == [h.index for h in batched[q]]
            assert [h.score for h in single] == [h.score for h in batched[q]]


# -- rowwise top-k ----------------------------------------------------------


class TestTopKRowwise:
    def test_matches_1d_helper_per_row(self, rng):
        scores = rng.normal(size=(7, 40))
        for k in (1, 5, 40):
            rows = top_k_indices_rowwise(scores, k)
            for q in range(scores.shape[0]):
                np.testing.assert_array_equal(rows[q], top_k_indices(scores[q], k))

    def test_stable_tie_breaking(self):
        scores = np.array([[1.0, 3.0, 3.0, 3.0, 2.0], [2.0, 2.0, 2.0, 2.0, 2.0]])
        best = top_k_indices_rowwise(scores, 3)
        np.testing.assert_array_equal(best[0], [1, 2, 3])  # ties by index order
        np.testing.assert_array_equal(best[1], [0, 1, 2])

    def test_largest_false(self):
        scores = np.array([[4.0, 1.0, 3.0, 2.0]])
        np.testing.assert_array_equal(
            top_k_indices_rowwise(scores, 2, largest=False)[0], [1, 3]
        )

    def test_k_clamped_to_row_width(self):
        scores = np.array([[2.0, 1.0, 3.0]])
        best = top_k_indices_rowwise(scores, 10)
        np.testing.assert_array_equal(best[0], [2, 0, 1])

    def test_degenerate_shapes(self):
        assert top_k_indices_rowwise(np.empty((0, 5)), 3).shape == (0, 0)
        assert top_k_indices_rowwise(np.empty((4, 0)), 3).shape == (4, 0)
        assert top_k_indices_rowwise(np.ones((2, 3)), 0).shape == (2, 0)
        with pytest.raises(ValueError):
            top_k_indices_rowwise(np.ones(3), 2)


# -- collection: batch freshness + byte gauges ------------------------------


def make_points(rng, n: int, dim: int = 16, offset: int = 0) -> list[Point]:
    return [
        Point(offset + i, rng.normal(size=dim), {"slot": offset + i})
        for i in range(n)
    ]


class TestCollectionBatching:
    def test_stale_index_rebuilt_exactly_once_per_batch(self, rng, monkeypatch):
        col = Collection("c", dim=16)
        col.upsert(make_points(rng, 30))
        col.create_index("hnsw")
        builds = []
        original = col._index.build

        def counting_build(vectors):
            builds.append(vectors.shape[0])
            return original(vectors)

        monkeypatch.setattr(col._index, "build", counting_build)
        col.upsert(make_points(rng, 10, offset=100))  # stales the index
        queries = rng.normal(size=(5, 16))
        col.search_batch(queries, k=3)
        assert builds == [40], "stale index must rebuild exactly once per batch"
        col.search_batch(queries, k=3)
        assert builds == [40], "fresh index must not rebuild again"

    def test_batch_matches_sequential_exact(self, rng):
        col = Collection("c", dim=16, dtype=np.float64)
        col.upsert(make_points(rng, 25))
        queries = rng.normal(size=(4, 16))
        batched = col.search_batch(queries, k=5)
        for q in range(4):
            single = col.search(queries[q], k=5)
            assert [p.id for p in single] == [p.id for p in batched[q]]
            # Q=1 and Q=4 blocks may hit different BLAS kernels
            # (gemv vs gemm), drifting by an ulp even at float64.
            for ps, pb in zip(single, batched[q]):
                assert ps.score == pytest.approx(pb.score, rel=1e-12)

    def test_bytes_gauge_tracks_mutations(self, rng):
        col = Collection("values", dim=16, dtype=np.float32)
        gauge = col.metrics.gauge("vectordb.values.bytes")
        col.upsert(make_points(rng, 20))
        after_upsert = gauge.value
        assert after_upsert == col.nbytes
        assert after_upsert >= 20 * 16 * 4
        col.delete([0, 1, 2, 3])
        assert gauge.value == col.nbytes < after_upsert

    def test_float32_store_halves_vector_bytes(self, rng):
        pts = make_points(rng, 20)
        small = Collection("a", dim=16, dtype=np.float32)
        big = Collection("b", dim=16, dtype=np.float64)
        small.upsert(pts)
        big.upsert(pts)
        assert big._vectors.nbytes == 2 * small._vectors.nbytes


# -- engine memory + counter observability ----------------------------------


class TestMemoryObservability:
    def test_float32_halves_engine_index_bytes(self):
        fed = federation(range(6))
        sizes = {}
        for dtype in (np.float32, np.float64):
            engine = make_exs_engine(dtype, fused=True).index(fed)
            engine.method("exs")  # only ExS built: ratio is exact
            sizes[np.dtype(dtype).name] = engine.metrics.gauge("engine.index_bytes").value
        assert sizes["float64"] == 2 * sizes["float32"] > 0

    def test_exs_index_bytes_is_stacked_matrix(self):
        engine = make_exs_engine(np.float32, fused=True).index(federation(range(6)))
        method = engine.method("exs")
        assert method.index_bytes() == method._matrix.nbytes
        assert engine.embeddings.nbytes > 0  # semantic store reports too

    def test_fused_rows_counter(self):
        engine = make_exs_engine(np.float32, fused=True).index(federation(range(6)))
        engine.method("exs")
        rows = engine.embeddings.total_vectors
        engine.search_batch(QUERIES, method="exs", k=5, h=-1.0)
        assert engine.metrics.counter("exs.fused_rows").value == rows * len(QUERIES)


# -- linalg fast paths ------------------------------------------------------


class TestNormalizedFastPath:
    def test_normalized_skips_renormalization(self, rng):
        a = normalize_rows(rng.normal(size=(5, 12)))
        b = normalize_rows(rng.normal(size=(7, 12)))
        fast = cosine_similarity(a, b, normalized=True)
        np.testing.assert_array_equal(fast, a @ b.T)
        np.testing.assert_allclose(fast, cosine_similarity(a, b), atol=1e-12)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_normalize_rows_preserves_dtype(self, rng, dtype):
        a = rng.normal(size=(4, 8)).astype(dtype)
        assert normalize_rows(a).dtype == np.dtype(dtype)
