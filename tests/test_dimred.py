"""Tests for PCA, kNN graphs and UMAP."""

import numpy as np
import pytest

from repro.dimred import KNNGraph, PCA, UMAP, build_knn_graph
from repro.errors import ConfigurationError, NotFittedError
from repro.linalg.distances import euclidean_distance


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(3)
    centers = rng.standard_normal((3, 12)) * 8
    points = np.vstack([c + rng.standard_normal((60, 12)) for c in centers])
    labels = np.repeat(np.arange(3), 60)
    return points, labels


class TestPCA:
    def test_shapes(self, rng):
        x = rng.standard_normal((40, 10))
        out = PCA(n_components=3).fit_transform(x)
        assert out.shape == (40, 3)

    def test_variance_ordering(self, rng):
        x = rng.standard_normal((100, 8)) * np.array([10, 5, 2, 1, 1, 1, 1, 1])
        pca = PCA(n_components=4).fit(x)
        evr = pca.explained_variance_ratio_
        assert all(evr[i] >= evr[i + 1] - 1e-12 for i in range(3))
        assert evr[0] > 0.5

    def test_reconstruction_with_full_rank(self, rng):
        x = rng.standard_normal((30, 5))
        pca = PCA(n_components=5).fit(x)
        recon = pca.inverse_transform(pca.transform(x))
        np.testing.assert_allclose(recon, x, atol=1e-8)

    def test_centering(self, rng):
        x = rng.standard_normal((50, 4)) + 100.0
        out = PCA(n_components=2).fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.zeros((1, 4)))
        with pytest.raises(NotFittedError):
            PCA(2).inverse_transform(np.zeros((1, 2)))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            PCA(0)
        with pytest.raises(ConfigurationError):
            PCA(2).fit(np.zeros(4))

    def test_deterministic(self, rng):
        x = rng.standard_normal((80, 20))
        a = PCA(5, seed=1).fit_transform(x)
        b = PCA(5, seed=1).fit_transform(x)
        np.testing.assert_allclose(a, b)


class TestKNNGraph:
    def test_shapes_and_no_self(self, rng):
        pts = rng.standard_normal((30, 4))
        graph = build_knn_graph(pts, 5)
        assert graph.indices.shape == (30, 5)
        for i in range(30):
            assert i not in graph.indices[i]

    def test_sorted_distances(self, rng):
        graph = build_knn_graph(rng.standard_normal((30, 4)), 5)
        graph.validate()

    def test_exact_correctness(self, rng):
        pts = rng.standard_normal((25, 3))
        graph = build_knn_graph(pts, 4)
        d = euclidean_distance(pts, pts)
        np.fill_diagonal(d, np.inf)
        for i in range(25):
            expected = set(np.argsort(d[i])[:4].tolist())
            # allow ties to swap, but distances must match
            np.testing.assert_allclose(
                graph.distances[i], np.sort(d[i])[:4], atol=1e-9
            )
            assert len(set(graph.indices[i].tolist()) - expected) <= 1

    def test_k_clamped(self, rng):
        graph = build_knn_graph(rng.standard_normal((5, 2)), 100)
        assert graph.k == 4

    def test_approximate_close_to_exact(self, rng):
        pts = rng.standard_normal((150, 8))
        exact = build_knn_graph(pts, 5)
        approx = build_knn_graph(pts, 5, approximate=True)
        overlap = [
            len(set(exact.indices[i]) & set(approx.indices[i])) / 5 for i in range(150)
        ]
        assert float(np.mean(overlap)) > 0.7

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            build_knn_graph(np.zeros((1, 2)), 1)

    def test_validate_catches_bad_graph(self):
        bad = KNNGraph(
            indices=np.array([[1], [0]]),
            distances=np.array([[1.0, 0.5]]),  # wrong shape
        )
        with pytest.raises(ConfigurationError):
            bad.validate()


class TestUMAP:
    def test_preserves_cluster_structure(self, blobs):
        points, labels = blobs
        emb = UMAP(n_components=3, n_neighbors=10, n_epochs=60, seed=0).fit_transform(points)
        within = np.mean(
            [euclidean_distance(emb[labels == i], emb[labels == i]).mean() for i in range(3)]
        )
        between = euclidean_distance(emb[labels == 0], emb[labels == 1]).mean()
        assert between > 2.0 * within

    def test_output_shape(self, blobs):
        points, _ = blobs
        emb = UMAP(n_components=2, n_neighbors=8, n_epochs=30).fit_transform(points)
        assert emb.shape == (points.shape[0], 2)

    def test_transform_places_near_training_cluster(self, blobs):
        points, labels = blobs
        um = UMAP(n_components=3, n_neighbors=10, n_epochs=60, seed=0).fit(points)
        # a fresh point near cluster 2's centre
        query = points[labels == 2].mean(axis=0)
        emb_q = um.transform(query)[0]
        d = euclidean_distance(emb_q, um.embedding_)[0]
        nearest_labels = labels[np.argsort(d)[:10]]
        assert (nearest_labels == 2).mean() >= 0.8

    def test_precomputed_knn_used(self, blobs):
        points, _ = blobs
        knn = build_knn_graph(points, 10)
        um = UMAP(n_components=2, n_neighbors=10, n_epochs=20, precomputed_knn=knn, seed=0)
        emb = um.fit_transform(points)
        assert emb.shape[1] == 2

    def test_deterministic(self, blobs):
        points, _ = blobs
        a = UMAP(n_components=2, n_neighbors=8, n_epochs=20, seed=4).fit_transform(points)
        b = UMAP(n_components=2, n_neighbors=8, n_epochs=20, seed=4).fit_transform(points)
        np.testing.assert_allclose(a, b)

    def test_unfitted_transform(self):
        with pytest.raises(NotFittedError):
            UMAP().transform(np.zeros((1, 4)))

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            UMAP().fit(np.zeros((2, 3)))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            UMAP(n_components=0)
        with pytest.raises(ConfigurationError):
            UMAP(n_neighbors=1)
        with pytest.raises(ConfigurationError):
            UMAP(min_dist=5.0)


class TestSpectralInitFallback:
    """_spectral_init narrows its except: solver failures (ArpackError,
    the singular-factorization RuntimeError) fall back to a random
    init; programming errors propagate instead of being swallowed
    (regression: the handler used to be a blanket ``except Exception``)."""

    @staticmethod
    def _failing_eigsh(exc: Exception):
        def fake_eigsh(*args, **kwargs):
            raise exc

        return fake_eigsh

    @pytest.mark.parametrize(
        "exc",
        [
            pytest.param(RuntimeError("Factor is exactly singular"), id="singular-splu"),
            pytest.param(None, id="arpack-no-convergence"),  # filled in below
        ],
    )
    def test_solver_failures_fall_back_to_random_init(self, blobs, monkeypatch, exc):
        from scipy.sparse.linalg import ArpackError

        import repro.dimred.umap_ as umap_mod

        if exc is None:
            exc = ArpackError(-1)
        points, _ = blobs
        monkeypatch.setattr(umap_mod, "eigsh", self._failing_eigsh(exc))
        emb = UMAP(n_components=2, n_neighbors=8, n_epochs=5, seed=0).fit_transform(points)
        assert emb.shape == (points.shape[0], 2)
        assert np.isfinite(emb).all()

    def test_programming_errors_propagate(self, blobs, monkeypatch):
        import repro.dimred.umap_ as umap_mod

        points, _ = blobs
        monkeypatch.setattr(
            umap_mod, "eigsh", self._failing_eigsh(TypeError("bad argument"))
        )
        with pytest.raises(TypeError, match="bad argument"):
            UMAP(n_components=2, n_neighbors=8, n_epochs=5, seed=0).fit(points)
