"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import ProductQuantizer
from repro.clustering import SingleLinkageTree, condense_tree, mutual_reachability_mst
from repro.data.synthesis import CorpusSynthesizer
from repro.embedding import SemanticHashEncoder
from repro.vectordb import Collection, Point


class TestEncoderProperties:
    @given(st.text(alphabet="abcdefghij 123", min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_one_or_zero(self, text):
        enc = SemanticHashEncoder(dim=64)
        v = enc.encode_one(text)
        norm = float(np.linalg.norm(v))
        if norm > 0:
            assert float(v @ v) == pytest.approx(1.0, abs=1e-9)

    @given(
        st.text(alphabet="abcdefghij ", min_size=1, max_size=20),
        st.text(alphabet="abcdefghij ", min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_cosine_symmetric_and_bounded(self, a, b):
        enc = SemanticHashEncoder(dim=64)
        va, vb = enc.encode([a, b])
        cos_ab = float(va @ vb)
        cos_ba = float(vb @ va)
        assert cos_ab == pytest.approx(cos_ba)
        assert -1.0 - 1e-9 <= cos_ab <= 1.0 + 1e-9

    @given(st.text(alphabet="abcdef ", min_size=1, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_token_order_invariance_of_mean_pooling(self, text):
        # mean pooling makes bag-of-tokens encoders order-insensitive
        # for permutations that keep the same token multiset
        enc = SemanticHashEncoder(dim=64)
        tokens = text.split()
        if len(tokens) < 2:
            return
        reversed_text = " ".join(reversed(tokens))
        v1, v2 = enc.encode([" ".join(tokens), reversed_text])
        # phrase detection may differ across orders; allow tiny drift
        assert float(v1 @ v2) > 0.95


class TestPQProperties:
    @given(st.integers(2, 6), st.integers(20, 60))
    @settings(max_examples=10, deadline=None)
    def test_quantization_is_idempotent(self, m, n):
        rng = np.random.default_rng(n * m)
        dim = 8 * m
        points = rng.standard_normal((n, dim))
        pq = ProductQuantizer(n_subvectors=m, n_centroids=min(16, n)).fit(points)
        codes = pq.encode(points)
        recoded = pq.encode(pq.decode(codes))
        np.testing.assert_array_equal(codes, recoded)


class TestCondensedTreeProperties:
    @given(st.integers(12, 40), st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_point_records_partition_the_data(self, n, min_cluster_size):
        rng = np.random.default_rng(n)
        points = rng.standard_normal((n, 3))
        edges, weights = mutual_reachability_mst(points, min_samples=3)
        slt = SingleLinkageTree.from_mst(edges, weights)
        tree = condense_tree(slt, min_cluster_size=min_cluster_size)
        point_children = sorted(int(c) for c in tree.child if c < n)
        assert point_children == list(range(n))
        assert int(tree.child_size[tree.child < n].sum()) == n


class TestCollectionStateProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdefgh"), st.booleans()),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_upsert_delete_sequences_stay_consistent(self, operations):
        """Arbitrary upsert/delete interleavings keep the id -> payload
        mapping exact (regression guard for the row-mapping bug found
        during development)."""
        rng = np.random.default_rng(0)
        collection = Collection("prop", dim=4)
        expected: dict[str, int] = {}
        for step, (point_id, is_delete) in enumerate(operations):
            if is_delete:
                collection.delete([point_id])
                expected.pop(point_id, None)
            else:
                collection.upsert([Point(point_id, rng.standard_normal(4), {"step": step})])
                expected[point_id] = step
        assert len(collection) == len(expected)
        for point_id, step in expected.items():
            assert collection.get(point_id).payload == {"step": step}


class TestGeneratorProperties:
    @given(st.integers(0, 5))
    @settings(max_examples=4, deadline=None)
    def test_corpus_invariants_across_seeds(self, seed):
        corpus = CorpusSynthesizer(
            "prop", n_tables=40, pairs_target=300, seed=seed
        ).build()
        assert corpus.qrels.n_pairs == 300
        assert len(corpus.queries) == 60
        # every judged pair's grade matches the latent rule
        for query, relation_id, grade in corpus.qrels.pairs()[:100]:
            spec = next(s for s in corpus.queries if s.text == query)
            topic, region, year = corpus.table_facets[relation_id]
            assert grade == CorpusSynthesizer.grade(spec, topic, region, year)
        # query texts are unique (qrels are keyed by text)
        texts = [q.text for q in corpus.queries]
        assert len(texts) == len(set(texts))
