"""The async serving front end: batching, admission, deadlines, drain.

Functional coverage for :mod:`repro.serving` over a small indexed
engine, plus clock-injected unit tests for the pure admission pieces
(token buckets, the admission controller, the micro-batcher).  The
concurrency/property side — rank identity under many workers and
writer deltas racing a drain — lives in ``test_serving_stress.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.engine import DiscoveryEngine
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    QueueFull,
    RateLimited,
    ServingClosed,
)
from repro.serving import (
    AdmissionController,
    BatchKey,
    MicroBatcher,
    PendingRequest,
    RateLimit,
    ServingEngine,
    TenantRateLimiter,
    TokenBucket,
)

QUERIES = [
    "vaccination campaign europe",
    "football league results",
    "gdp figures by country",
    "comirnaty germany",
    "ajax trophy",
]


@pytest.fixture()
def engine(tiny_federation) -> DiscoveryEngine:
    eng = DiscoveryEngine(dim=48)
    eng.index(tiny_federation)
    eng.method("exs")  # build outside the timed/async paths
    return eng


def run(coro):
    return asyncio.run(coro)


# -- the happy path ----------------------------------------------------------


def test_submit_matches_direct_search(engine):
    """Every batched answer is element-wise identical to engine.search."""

    async def serve() -> list:
        async with engine.serving(window_ms=5.0, max_batch=4) as serving:
            return await asyncio.gather(
                *(serving.submit(q, method="exs", k=3) for q in QUERIES)
            )

    served = run(serve())
    for query, result in zip(QUERIES, served):
        direct = engine.search(query, method="exs", k=3)
        assert result.relation_ids() == direct.relation_ids()
        # The fused batch kernel and the per-block single-query path sum
        # in different orders; float32 leaves ~1e-8 of slack, ranks none.
        for got, want in zip(result.matches, direct.matches):
            assert got.score == pytest.approx(want.score, abs=1e-5)


def test_concurrent_submits_coalesce_into_windows(engine):
    """5 concurrent submits with max_batch=4 -> exactly 2 windows."""

    async def serve():
        async with engine.serving(window_ms=20.0, max_batch=4) as serving:
            await asyncio.gather(
                *(serving.submit(q, method="exs", k=3) for q in QUERIES)
            )

    run(serve())
    snap = engine.metrics.snapshot()
    assert snap["counters"]["serving.submitted"] == 5
    assert snap["counters"]["serving.completed"] == 5
    assert snap["counters"]["serving.batches"] == 2
    fills = snap["stages"]["serving.batch_fill"]
    assert fills["count"] == 2
    assert snap["gauges"]["serving.queue_depth"] == 0


def test_incompatible_requests_never_share_a_window(engine):
    """Different k values are different dispatch signatures."""

    async def serve():
        async with engine.serving(window_ms=20.0, max_batch=8) as serving:
            results = await asyncio.gather(
                serving.submit(QUERIES[0], method="exs", k=1),
                serving.submit(QUERIES[1], method="exs", k=1),
                serving.submit(QUERIES[2], method="exs", k=3, h=-1.0),
            )
            return results

    k1a, k1b, k3 = run(serve())
    assert len(k1a.matches) == 1 and len(k1b.matches) == 1
    assert len(k3.matches) == 3
    # Two keys -> two windows, even though one window had room for all.
    assert engine.metrics.snapshot()["counters"]["serving.batches"] == 2


def test_size_trigger_fires_before_window(engine):
    """A full window dispatches immediately; nobody waits out a huge
    window_ms when max_batch requests are already parked."""

    async def serve():
        serving = engine.serving(window_ms=60_000.0, max_batch=len(QUERIES))
        async with serving:
            results = await asyncio.wait_for(
                asyncio.gather(
                    *(serving.submit(q, method="exs", k=3) for q in QUERIES)
                ),
                timeout=10.0,
            )
            return results

    assert len(run(serve())) == len(QUERIES)


def test_serving_factory_and_context_manager(engine):
    serving = engine.serving(window_ms=1.0)
    assert isinstance(serving, ServingEngine)
    assert serving.engine is engine
    assert serving.metrics is engine.metrics  # one registry, whole path
    assert serving.state == "idle"

    async def use():
        async with serving as s:
            assert s.state == "running"
            await s.submit(QUERIES[0], method="exs", k=2)
        assert s.state == "closed"

    run(use())


# -- deadlines and the empty-window bugfix -----------------------------------


def test_expired_requests_are_shed_not_dispatched(engine):
    """timeout_ms=0 expires in the window: shed with DeadlineExceeded,
    and the engine must never see an empty batch (the ``search_batch([])``
    call would bump ``exs.batches`` for work that does not exist)."""
    base_batches = engine.metrics.snapshot()["counters"].get("exs.batches", 0)

    async def serve():
        async with engine.serving(window_ms=1.0, max_batch=8) as serving:
            outcomes = await asyncio.gather(
                *(
                    serving.submit(q, method="exs", k=3, timeout_ms=0.0)
                    for q in QUERIES
                ),
                return_exceptions=True,
            )
            return outcomes

    outcomes = run(serve())
    assert all(isinstance(o, DeadlineExceeded) for o in outcomes)
    snap = engine.metrics.snapshot()
    assert snap["counters"]["serving.shed"] == len(QUERIES)
    assert "serving.batches" not in snap["counters"]  # no window dispatched
    assert snap["counters"].get("exs.batches", 0) == base_batches
    assert snap["gauges"]["serving.queue_depth"] == 0


def test_mixed_window_sheds_only_the_expired(engine):
    """Live and expired requests in one window: the live ones are
    answered from a batch that excludes the dead ones."""

    async def serve():
        async with engine.serving(window_ms=10.0, max_batch=8) as serving:
            return await asyncio.gather(
                serving.submit(QUERIES[0], method="exs", k=3, timeout_ms=0.0),
                serving.submit(QUERIES[1], method="exs", k=3),
                serving.submit(QUERIES[2], method="exs", k=3, timeout_ms=0.0),
                serving.submit(QUERIES[3], method="exs", k=3),
                return_exceptions=True,
            )

    dead0, live1, dead2, live3 = run(serve())
    assert isinstance(dead0, DeadlineExceeded)
    assert isinstance(dead2, DeadlineExceeded)
    assert live1.relation_ids() == engine.search(QUERIES[1], method="exs", k=3).relation_ids()
    assert live3.relation_ids() == engine.search(QUERIES[3], method="exs", k=3).relation_ids()
    snap = engine.metrics.snapshot()
    assert snap["counters"]["serving.shed"] == 2
    assert snap["counters"]["serving.completed"] == 2
    assert snap["stages"]["serving.batch_fill"]["max_ms"] == 2.0  # live only


def test_generous_deadline_is_met(engine):
    async def serve():
        async with engine.serving(window_ms=1.0) as serving:
            return await serving.submit(
                QUERIES[0], method="exs", k=3, timeout_ms=30_000.0
            )

    assert run(serve()).relation_ids()


def test_negative_timeout_rejected(engine):
    async def serve():
        async with engine.serving() as serving:
            with pytest.raises(ConfigurationError):
                await serving.submit(QUERIES[0], method="exs", timeout_ms=-1.0)

    run(serve())


# -- admission: backpressure and tenant budgets ------------------------------


def test_queue_full_rejects_with_retry_hint(engine):
    """max_queue=1 and a parked request: the second submit is rejected
    at the door with a usable retry-after hint."""

    async def serve():
        async with engine.serving(window_ms=60_000.0, max_batch=8, max_queue=1) as serving:
            first = asyncio.ensure_future(serving.submit(QUERIES[0], method="exs", k=3))
            await asyncio.sleep(0)  # park the first request in its window
            with pytest.raises(QueueFull) as excinfo:
                await serving.submit(QUERIES[1], method="exs", k=3)
            assert excinfo.value.retry_after_ms > 0.0
            serving.batcher.flush_all()  # release the parked window
            await first

    run(serve())
    assert engine.metrics.snapshot()["counters"]["serving.rejected"] == 1


def test_tenant_rate_limit_isolates_tenants(engine):
    """Tenant A saturating its bucket throttles only tenant A."""
    limits = {"alpha": RateLimit(rate=0.001, burst=1.0)}

    async def serve():
        async with engine.serving(window_ms=1.0, tenant_limits=limits) as serving:
            await serving.submit(QUERIES[0], method="exs", k=3, tenant="alpha")
            with pytest.raises(RateLimited) as excinfo:
                await serving.submit(QUERIES[1], method="exs", k=3, tenant="alpha")
            assert excinfo.value.tenant == "alpha"
            assert excinfo.value.retry_after_ms > 0.0
            # Unlimited tenants sail through while alpha is throttled.
            result = await serving.submit(QUERIES[1], method="exs", k=3, tenant="beta")
            assert result.relation_ids()

    run(serve())
    counters = engine.metrics.snapshot()["counters"]
    assert counters["serving.throttled"] == 1
    assert counters["serving.tenant.alpha.throttled"] == 1
    assert "serving.tenant.beta.throttled" not in counters


def test_default_limit_applies_to_unknown_tenants(engine):
    async def serve():
        async with engine.serving(
            window_ms=1.0, default_limit=RateLimit(rate=0.001, burst=1.0)
        ) as serving:
            await serving.submit(QUERIES[0], method="exs", k=3, tenant="anyone")
            with pytest.raises(RateLimited):
                await serving.submit(QUERIES[1], method="exs", k=3, tenant="anyone")

    run(serve())


# -- drain and lifecycle -----------------------------------------------------


def test_drain_flushes_pending_then_closes(engine):
    """drain() answers every parked request, then refuses new ones."""

    async def serve():
        serving = engine.serving(window_ms=60_000.0, max_batch=8)
        async with serving:
            parked = [
                asyncio.ensure_future(serving.submit(q, method="exs", k=3))
                for q in QUERIES
            ]
            await asyncio.sleep(0)
            assert serving.outstanding == len(QUERIES)
            await serving.drain()
            assert serving.state == "closed"
            for future in parked:
                assert future.result().relation_ids()
            with pytest.raises(ServingClosed):
                await serving.submit(QUERIES[0], method="exs", k=3)

    run(serve())
    snap = engine.metrics.snapshot()
    assert snap["counters"]["serving.completed"] == len(QUERIES)
    assert snap["gauges"]["serving.queue_depth"] == 0


def test_drain_is_idempotent(engine):
    async def serve():
        serving = engine.serving()
        async with serving:
            await serving.submit(QUERIES[0], method="exs", k=2)
        await serving.drain()  # second drain: already closed, no-op
        assert serving.state == "closed"

    run(serve())


def test_drain_without_traffic(engine):
    async def serve():
        serving = engine.serving()
        await serving.drain()  # never started: closes directly from idle
        assert serving.state == "closed"

    run(serve())


def test_unknown_method_error_reaches_the_caller(engine):
    """Engine-side failures fail the window's futures, not the loop."""

    async def serve():
        async with engine.serving(window_ms=1.0) as serving:
            with pytest.raises(ConfigurationError, match="unknown method"):
                await serving.submit(QUERIES[0], method="nope", k=3)

    run(serve())
    assert engine.metrics.snapshot()["gauges"]["serving.queue_depth"] == 0


def test_serving_config_validation(engine):
    with pytest.raises(ConfigurationError):
        engine.serving(window_ms=-1.0)
    with pytest.raises(ConfigurationError):
        engine.serving(max_batch=0)
    with pytest.raises(ConfigurationError):
        engine.serving(max_queue=0)
    with pytest.raises(ConfigurationError):
        engine.serving(dispatch_workers=0)
    with pytest.raises(ConfigurationError):
        engine.serving(batch_workers=0)
    with pytest.raises(ConfigurationError):
        RateLimit(rate=0.0, burst=1.0)
    with pytest.raises(ConfigurationError):
        RateLimit(rate=1.0, burst=0.5)


# -- clock-injected unit tests: the pure admission pieces --------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(RateLimit(rate=2.0, burst=2.0), now=0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # One token regenerates in 1/rate = 0.5 s.
        assert bucket.retry_after(0.0) == pytest.approx(0.5)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(RateLimit(rate=10.0, burst=3.0), now=0.0)
        assert bucket.tokens == 3.0
        bucket.try_acquire(0.0)
        bucket._refill(100.0)  # hours of idle never exceed the burst
        assert bucket.tokens == 3.0

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=1.0), now=10.0)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)  # no refill from the past
        assert bucket.try_acquire(11.0)


class TestTenantRateLimiter:
    def test_none_default_admits_unknown_tenants(self):
        limiter = TenantRateLimiter(default_limit=None)
        assert all(limiter.admit("anyone", float(t)) is None for t in range(100))

    def test_pinned_budget_beats_default(self):
        limiter = TenantRateLimiter(
            default_limit=RateLimit(rate=100.0, burst=100.0),
            per_tenant={"slow": RateLimit(rate=1.0, burst=1.0)},
        )
        assert limiter.admit("slow", 0.0) is None
        retry = limiter.admit("slow", 0.0)
        assert retry is not None and retry == pytest.approx(1.0)
        assert limiter.admit("fast", 0.0) is None  # default bucket


class TestAdmissionController:
    def make(self, **kwargs) -> AdmissionController:
        defaults = dict(max_queue=4, window_ms=3.0, max_batch=2)
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_retry_after_scales_with_backlog(self):
        control = self.make()
        assert control.retry_after_ms(1) == pytest.approx(3.0)  # one window
        assert control.retry_after_ms(4) == pytest.approx(6.0)  # two windows
        assert control.retry_after_ms(9) == pytest.approx(15.0)

    def test_queue_bound(self):
        control = self.make()
        control.admit("t", 3, 0.0)
        with pytest.raises(QueueFull):
            control.admit("t", 4, 0.0)

    def test_bucket_checked_before_queue(self):
        """A throttled tenant gets RateLimited even when the queue is
        also full — it must not learn queue state it cannot use."""
        control = self.make(tenant_limits={"a": RateLimit(rate=0.001, burst=1.0)})
        control.admit("a", 0, 0.0)
        with pytest.raises(RateLimited):
            control.admit("a", 99, 0.0)

    def test_deadline_stamping(self):
        control = self.make()
        assert control.deadline(None, 5.0) is None
        assert control.deadline(250.0, 5.0) == pytest.approx(5.25)
        with pytest.raises(ConfigurationError):
            control.deadline(-1.0, 5.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=0, window_ms=3.0, max_batch=2)


class TestMicroBatcher:
    def test_size_trigger_and_flush_all_chunking(self):
        dispatched: list[int] = []

        async def drive():
            batcher = MicroBatcher(
                60_000.0, 2, lambda key, batch: dispatched.append(len(batch))
            )
            loop = asyncio.get_running_loop()
            key = BatchKey(method="exs", k=3, h=0.0)
            for i in range(5):
                batcher.add(
                    PendingRequest(
                        query=f"q{i}", key=key, tenant="t", future=loop.create_future()
                    )
                )
            assert dispatched == [2, 2]  # size trigger, twice
            assert batcher.depth == 1
            batcher.flush_all()
            assert dispatched == [2, 2, 1]
            assert batcher.depth == 0
            batcher.flush(key)  # empty flush is a no-op, not a [] dispatch
            assert dispatched == [2, 2, 1]

        run(drive())

    def test_keys_age_independently(self):
        dispatched: list[tuple] = []

        async def drive():
            batcher = MicroBatcher(
                60_000.0, 8, lambda key, batch: dispatched.append((key, len(batch)))
            )
            loop = asyncio.get_running_loop()
            k3 = BatchKey(method="exs", k=3, h=0.0)
            k5 = BatchKey(method="exs", k=5, h=0.0)
            for key in (k3, k5, k3):
                batcher.add(
                    PendingRequest(
                        query="q", key=key, tenant="t", future=loop.create_future()
                    )
                )
            batcher.flush(k3)
            assert dispatched == [(k3, 2)]
            assert batcher.depth == 1  # k5 still parked
            batcher.flush_all()
            assert dispatched == [(k3, 2), (k5, 1)]

        run(drive())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(-1.0, 2, lambda key, batch: None)
        with pytest.raises(ConfigurationError):
            MicroBatcher(1.0, 0, lambda key, batch: None)
