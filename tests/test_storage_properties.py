"""Property tests: persistence is invisible in the rankings.

The storage layer's contract is that *how* an index got into memory —
cold ``index()`` build, eager snapshot load, or ``mmap=True`` mapped
load — is undetectable in search results: rankings identical, scores
exact (the snapshot stores the engine's scan dtype, so the mapped bytes
ARE the cold-build bytes).  That must hold across methods, shard
counts, both scan dtypes, and across lifecycle deltas applied after a
load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation
from repro.errors import ConfigurationError
from repro.storage import live_mapped_paths

from tests.test_sharding import (
    QUERIES,
    assert_same_rankings,
    make_relation,
    qualified,
)


def federation(n: int = 8) -> Federation:
    return Federation.from_relations([make_relation(s) for s in range(n)])


def make_engine(shards: int = 1, dtype: type = np.float32) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        method_params={"anns": {"index_kind": "exact", "n_candidates": 10_000}},
        shards=shards,
        dtype=dtype,
        executor="inline",
    )


def assert_scores_exact(a: DiscoveryEngine, b: DiscoveryEngine, method: str) -> None:
    """Stronger than the cross-backend tolerance: a reloaded snapshot
    serves the very same bytes, so scores match bit for bit."""
    for query in QUERIES:
        ra = a.search(query, method=method, k=100, h=-1.0)
        rb = b.search(query, method=method, k=100, h=-1.0)
        assert ra.relation_ids() == rb.relation_ids()
        assert [m.score for m in ra.matches] == [m.score for m in rb.matches]


@pytest.mark.parametrize("mmap", [False, True], ids=["eager", "mmap"])
@pytest.mark.parametrize("method", ["exs", "anns"])
@pytest.mark.parametrize("shards", [1, 2, 5])
def test_reload_matches_cold_build(tmp_path, shards, method, mmap):
    fed = federation()
    with make_engine(shards).index(fed) as cold:
        cold.save_index(tmp_path / "snap")
        with make_engine(shards).load_index(tmp_path / "snap", mmap=mmap) as warm:
            assert_scores_exact(cold, warm, method)
    assert not live_mapped_paths()


@pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
def test_reload_matches_cold_build_both_dtypes(tmp_path, dtype):
    fed = federation()
    with make_engine(shards=2, dtype=dtype).index(fed) as cold:
        cold.save_index(tmp_path / "snap")
        loaded = make_engine(shards=2, dtype=dtype).load_index(
            tmp_path / "snap", mmap=True
        )
        with loaded as warm:
            assert_scores_exact(cold, warm, "exs")
    assert not live_mapped_paths()


@pytest.mark.parametrize("mmap", [False, True], ids=["eager", "mmap"])
@pytest.mark.parametrize("shards", [1, 5])
def test_deltas_after_load_match_deltas_after_build(tmp_path, shards, mmap):
    """A loaded engine is a *live* engine: a delta applied after the
    load ranks exactly like the same delta applied to the cold build
    (the mapped backing is copied out on the first store mutation)."""
    fed = federation()
    cold = make_engine(shards).index(fed)
    cold.save_index(tmp_path / "snap")
    warm = make_engine(shards).load_index(tmp_path / "snap", mmap=mmap)
    try:
        for engine in (cold, warm):
            engine.method("exs")
            engine.method("anns")
            engine.add_relations({qualified(50): make_relation(50)})
            engine.update_relations({qualified(2): make_relation(2, version=1)})
            engine.remove_relations([qualified(3)])
        for method in ("exs", "anns"):
            assert_same_rankings(cold, warm, method)
    finally:
        cold.close()
        warm.close()
    assert not live_mapped_paths()


@pytest.mark.parametrize("saved_shards,loaded_shards", [(5, 2), (2, 1), (1, 3)])
def test_layout_change_repartitions_identically(tmp_path, saved_shards, loaded_shards):
    """Loading under a different shard count re-partitions the mapped
    relations deterministically — rankings unchanged, and the orphaned
    per-shard buffer handles are released."""
    fed = federation()
    with make_engine(saved_shards).index(fed) as cold:
        cold.save_index(tmp_path / "snap")
        loaded = make_engine(loaded_shards).load_index(tmp_path / "snap", mmap=True)
        with loaded as warm:
            assert_scores_exact(cold, warm, "exs")
    assert not live_mapped_paths()


class TestDtypeMismatch:
    """Satellite regression: a snapshot's stored dtype must match the
    loading engine's configured dtype, failing loudly up front."""

    def test_load_index_names_both_dtypes(self, tmp_path):
        with make_engine(dtype=np.float32).index(federation(4)) as engine:
            engine.save_index(tmp_path / "snap")
        with make_engine(dtype=np.float64) as mismatched:
            with pytest.raises(ConfigurationError) as excinfo:
                mismatched.load_index(tmp_path / "snap")
            assert "float32" in str(excinfo.value)
            assert "float64" in str(excinfo.value)
            assert not mismatched.is_indexed

    def test_sharded_snapshot_checked_at_the_root(self, tmp_path):
        with make_engine(shards=3, dtype=np.float64).index(federation(6)) as engine:
            engine.save_index(tmp_path / "snap")
        with make_engine(shards=3, dtype=np.float32) as mismatched:
            with pytest.raises(ConfigurationError) as excinfo:
                mismatched.load_index(tmp_path / "snap", mmap=True)
            assert "float64" in str(excinfo.value)
        assert not live_mapped_paths()

    def test_matching_dtype_loads(self, tmp_path):
        with make_engine(dtype=np.float64).index(federation(4)) as engine:
            engine.save_index(tmp_path / "snap")
        with make_engine(dtype=np.float64).load_index(tmp_path / "snap") as warm:
            assert warm.is_indexed
