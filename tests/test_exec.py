"""The execution layer: shared buffers, backends, resident shard scans.

Covers the :mod:`repro.linalg` shared-memory buffer (ownership,
refcounts, leak accounting down to ``/dev/shm``), the three backends'
contracts (order-preserving ``map``, worker-cap clamping, persistent
pools — the regression tests for the per-call pool churn this layer
replaced), the process backend's publish/scan/drop worker protocol,
and engine/serving integration: a ``executor="process"`` engine must
rank exactly like an inline one and release every shared segment at
``close()``.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import DiscoveryEngine
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    EXECUTOR_ENV,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ShardScanSpec,
    ThreadBackend,
    default_pool_size,
    resolve_backend,
)
from repro.linalg import (
    BufferSpec,
    SharedBuffer,
    live_segment_names,
    segment_scores,
    shared_memory_available,
)
from repro.serving import ServingEngine

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)

DEV_SHM = Path("/dev/shm")


def shm_segments() -> set[str]:
    """Names under /dev/shm (empty off Linux, where the check is moot)."""
    if not DEV_SHM.is_dir():
        return set()
    return {p.name for p in DEV_SHM.iterdir()}


def make_spec(matrix: np.ndarray, generation: int = 1, shared: bool = True):
    """(ShardScanSpec, owner buffer or None) over one uniform segment."""
    offsets = np.arange(0, matrix.shape[0], 2, dtype=np.intp)
    weights = np.full(matrix.shape[0], 0.5, dtype=np.float64)
    buffer = SharedBuffer.from_array(matrix, shared=shared)
    spec = buffer.spec()
    return (
        ShardScanSpec(
            generation=generation,
            buffer=spec,
            matrix=None if spec is not None else buffer.array,
            offsets=offsets,
            weights=weights,
            aggregate="mean",
            top_fraction=0.1,
        ),
        buffer,
    )


# -- SharedBuffer ---------------------------------------------------------


class TestSharedBuffer:
    def test_roundtrip_and_spec(self, rng):
        source = rng.standard_normal((6, 4)).astype(np.float32)
        buffer = SharedBuffer.from_array(source)
        try:
            assert np.array_equal(buffer.array, source)
            spec = buffer.spec()
            assert spec is not None
            assert spec.shape == (6, 4) and spec.dtype == "float32"
            view = SharedBuffer.attach(spec)
            try:
                assert np.array_equal(view.array, source)
                assert not view.array.flags.writeable
            finally:
                view.close()
        finally:
            buffer.close()

    def test_owner_copy_is_independent_of_source(self, rng):
        source = rng.standard_normal((3, 3)).astype(np.float32)
        buffer = SharedBuffer.from_array(source)
        try:
            source[...] = 0.0
            assert not np.array_equal(buffer.array, source)
        finally:
            buffer.close()

    def test_close_unlinks_segment_and_registry(self, rng):
        before = shm_segments()
        buffer = SharedBuffer.from_array(rng.standard_normal((4, 4)).astype(np.float32))
        spec = buffer.spec()
        assert spec.name in live_segment_names()
        if DEV_SHM.is_dir():
            assert shm_segments() - before  # the segment exists on disk
        buffer.close()
        assert buffer.closed
        assert spec.name not in live_segment_names()
        assert shm_segments() <= before  # and is gone again
        with pytest.raises(ValueError):
            _ = buffer.array

    def test_refcount_keeps_segment_alive(self, rng):
        buffer = SharedBuffer.from_array(rng.standard_normal((2, 2)).astype(np.float32))
        name = buffer.spec().name
        buffer.addref()
        buffer.close()
        assert not buffer.closed and name in live_segment_names()
        buffer.close()
        assert buffer.closed and name not in live_segment_names()
        with pytest.raises(ValueError):
            buffer.addref()

    def test_close_is_idempotent(self, rng):
        buffer = SharedBuffer.from_array(rng.standard_normal((2, 2)).astype(np.float32))
        buffer.close()
        buffer.close()  # second close is a no-op

    def test_fallback_when_not_shared(self, rng):
        source = rng.standard_normal((3, 2)).astype(np.float32)
        buffer = SharedBuffer.from_array(source, shared=False)
        try:
            assert buffer.spec() is None
            assert np.array_equal(buffer.array, source)
        finally:
            buffer.close()

    def test_zero_size_array_falls_back(self):
        buffer = SharedBuffer.from_array(np.empty((0, 4), dtype=np.float32))
        try:
            assert buffer.spec() is None  # zero-byte segments don't exist
        finally:
            buffer.close()


class TestSegmentScores:
    def test_mean_matches_manual_reduction(self, rng):
        sims = rng.standard_normal((6, 3))
        offsets = np.array([0, 2, 5], dtype=np.intp)
        weights = rng.random(6)
        got = segment_scores(sims, offsets, weights, aggregate="mean")
        expected = np.add.reduceat(sims * weights[:, np.newaxis], offsets, axis=0)
        assert np.array_equal(got, expected)

    def test_max_mean_selects_top_fraction(self):
        sims = np.array([[0.0], [1.0], [10.0], [2.0]], dtype=np.float64)
        offsets = np.array([0, 2], dtype=np.intp)
        weights = np.ones(4)
        got = segment_scores(sims, offsets, weights, aggregate="max_mean", top_fraction=0.5)
        assert got[0, 0] == pytest.approx(1.0)  # best 1 of rows 0-1
        assert got[1, 0] == pytest.approx(10.0)  # best 1 of rows 2-3

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ValueError):
            segment_scores(np.zeros((2, 1)), np.zeros(1, dtype=np.intp), np.ones(2), aggregate="median")


# -- backend contracts ----------------------------------------------------


class TestInlineBackend:
    def test_map_preserves_order(self):
        with InlineBackend() as backend:
            assert backend.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_submit_returns_future(self):
        with InlineBackend() as backend:
            assert backend.submit(lambda a, b: a + b, 2, 3).result() == 5

    def test_submit_captures_exception(self):
        def boom() -> None:
            raise RuntimeError("inline boom")

        with InlineBackend() as backend:
            with pytest.raises(RuntimeError, match="inline boom"):
                backend.submit(boom).result()

    def test_no_shard_surface(self):
        with InlineBackend() as backend:
            assert not backend.supports_shard_scans
            with pytest.raises(ExecutionError):
                backend.publish_shard("k", None)
            with pytest.raises(ExecutionError):
                backend.scan_shards([("k", 0, np.zeros((1, 2)))])


class TestThreadBackend:
    def test_map_preserves_order(self):
        with ThreadBackend(max_workers=4) as backend:
            assert backend.map(lambda x: x + 1, list(range(20))) == list(range(1, 21))

    def test_pool_persists_across_calls(self):
        """The regression the exec layer exists for: repeated maps reuse
        ONE pool instead of constructing one per call."""
        with ThreadBackend(max_workers=3) as backend:
            assert backend.pool is None  # lazy until first parallel work
            backend.map(lambda x: x, [1, 2, 3])
            first = backend.pool
            assert first is not None
            backend.map(lambda x: x, [4, 5, 6])
            backend.submit(lambda: None).result()
            assert backend.pool is first

    def test_cap_clamps_concurrency(self):
        """``cap`` (the caller's ``workers=``) bounds in-flight lanes even
        when the pool itself is larger."""
        active = 0
        peak = 0
        lock = threading.Lock()

        def task(_: int) -> int:
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.02)
            with lock:
                active -= 1
            return 0

        with ThreadBackend(max_workers=8) as backend:
            backend.map(task, list(range(12)), cap=2)
        assert peak <= 2

    def test_worker_count_is_bounded(self):
        """No ``max_workers=len(items)`` explosions: a huge item list
        still runs on the configured pool size."""
        with ThreadBackend(max_workers=2) as backend:
            assert backend.map(lambda x: x, list(range(500))) == list(range(500))
            assert backend.pool._max_workers == 2

    def test_map_propagates_errors(self):
        def sometimes(x: int) -> int:
            if x == 7:
                raise ValueError("lane error")
            return x

        with ThreadBackend(max_workers=4) as backend:
            with pytest.raises(ValueError, match="lane error"):
                backend.map(sometimes, list(range(10)))

    def test_closed_backend_rejects_work(self):
        backend = ThreadBackend(max_workers=2)
        backend.map(lambda x: x, [1, 2])
        backend.close()
        with pytest.raises(ExecutionError):
            backend.map(lambda x: x, [1, 2])
        with pytest.raises(ExecutionError):
            backend.submit(lambda: None)

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(max_workers=0)

    def test_records_exec_metrics(self):
        with ThreadBackend(max_workers=2) as backend:
            backend.map(lambda x: x, [1, 2, 3, 4])
            snapshot = backend.metrics.snapshot()
        assert snapshot["counters"]["exec.thread.tasks"] >= 1
        assert snapshot["gauges"]["exec.thread.pool_size"] == 2


class TestResolveBackend:
    def test_names(self):
        for name, cls in [
            ("inline", InlineBackend),
            ("thread", ThreadBackend),
            ("process", ProcessBackend),
        ]:
            backend = resolve_backend(name)
            try:
                assert type(backend) is cls and backend.name == name
            finally:
                backend.close()

    def test_env_variable_default(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "inline")
        backend = resolve_backend(None)
        assert isinstance(backend, InlineBackend)
        monkeypatch.delenv(EXECUTOR_ENV)
        backend = resolve_backend(None)
        try:
            assert isinstance(backend, ThreadBackend)
        finally:
            backend.close()

    def test_instance_passes_through(self):
        with InlineBackend() as backend:
            assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("fibers")

    def test_default_pool_size_bounds(self):
        assert 2 <= default_pool_size() <= 32


# -- the process backend's worker protocol --------------------------------


class TestProcessBackend:
    def test_scan_is_bitwise_identical_to_inline_kernel(self, rng):
        matrix = rng.standard_normal((8, 5)).astype(np.float32)
        queries = rng.standard_normal((3, 5)).astype(np.float32)
        spec, buffer = make_spec(matrix)
        with ProcessBackend(max_workers=2) as backend:
            backend.publish_shard("s0", spec)
            [scores] = backend.scan_shards([("s0", 1, queries)])
            expected = segment_scores(
                matrix @ queries.T, spec.offsets, spec.weights, aggregate="mean"
            )
            assert np.array_equal(scores, expected)
            counters = backend.metrics.snapshot()["counters"]
            assert counters["exec.process.shard_scans"] == 1
        buffer.close()

    def test_scan_many_shards_in_request_order(self, rng):
        matrices = [rng.standard_normal((4, 3)).astype(np.float32) for _ in range(3)]
        queries = rng.standard_normal((2, 3)).astype(np.float32)
        published = [make_spec(m) for m in matrices]
        with ProcessBackend(max_workers=2) as backend:
            for i, (spec, _) in enumerate(published):
                backend.publish_shard(f"s{i}", spec)
            results = backend.scan_shards([(f"s{i}", 1, queries) for i in range(3)])
            for matrix, (spec, _), scores in zip(matrices, published, results):
                expected = segment_scores(
                    matrix @ queries.T, spec.offsets, spec.weights, aggregate="mean"
                )
                assert np.array_equal(scores, expected)
        for _, buffer in published:
            buffer.close()

    def test_stale_generation_is_rejected(self, rng):
        spec, buffer = make_spec(rng.standard_normal((4, 3)).astype(np.float32))
        with ProcessBackend(max_workers=1) as backend:
            backend.publish_shard("s0", spec)
            with pytest.raises(ExecutionError, match="stale shard state"):
                backend.scan_shards([("s0", 2, np.zeros((1, 3), dtype=np.float32))])
        buffer.close()

    def test_unpublished_shard_is_rejected(self):
        with ProcessBackend(max_workers=1) as backend:
            with pytest.raises(ExecutionError, match="never published"):
                backend.scan_shards([("ghost", 0, np.zeros((1, 2), dtype=np.float32))])

    def test_drop_forgets_resident_state(self, rng):
        spec, buffer = make_spec(rng.standard_normal((4, 3)).astype(np.float32))
        with ProcessBackend(max_workers=1) as backend:
            backend.publish_shard("s0", spec)
            backend.drop_shard("s0")
            with pytest.raises(ExecutionError, match="no resident state"):
                backend.scan_shards([("s0", 1, np.zeros((1, 3), dtype=np.float32))])
            backend.drop_shard("never-published")  # no-op, not an error
        buffer.close()

    def test_matrix_fallback_without_segment(self, rng):
        """No shared memory for the spec -> the matrix pickles across."""
        matrix = rng.standard_normal((4, 3)).astype(np.float32)
        queries = rng.standard_normal((2, 3)).astype(np.float32)
        spec, buffer = make_spec(matrix, shared=False)
        assert spec.buffer is None and spec.matrix is not None
        with ProcessBackend(max_workers=1) as backend:
            backend.publish_shard("s0", spec)
            [scores] = backend.scan_shards([("s0", 1, queries)])
            expected = segment_scores(
                matrix @ queries.T, spec.offsets, spec.weights, aggregate="mean"
            )
            assert np.array_equal(scores, expected)
        buffer.close()

    def test_generic_map_still_works(self):
        # Closures can't pickle; generic work runs on the inherited
        # thread pool while only shard scans cross the process boundary.
        with ProcessBackend(max_workers=2) as backend:
            assert backend.map(lambda x: x * 3, [1, 2, 3]) == [3, 6, 9]

    def test_spec_requires_exactly_one_source(self):
        with pytest.raises(ExecutionError):
            ShardScanSpec(
                generation=0,
                buffer=None,
                matrix=None,
                offsets=np.zeros(1, dtype=np.intp),
                weights=np.ones(1),
                aggregate="mean",
                top_fraction=0.1,
            )
        with pytest.raises(ExecutionError):
            ShardScanSpec(
                generation=0,
                buffer=BufferSpec("x", (1, 1), "float32"),
                matrix=np.zeros((1, 1), dtype=np.float32),
                offsets=np.zeros(1, dtype=np.intp),
                weights=np.ones(1),
                aggregate="mean",
                top_fraction=0.1,
            )


# -- engine integration ---------------------------------------------------


QUERIES = ["vaccination campaign europe", "football league results", "gdp figures"]


def make_engine(tiny_federation, executor, shards: int = 1) -> DiscoveryEngine:
    engine = DiscoveryEngine(dim=48, shards=shards, executor=executor)
    engine.index(tiny_federation)
    return engine


class TestEngineIntegration:
    def test_engine_methods_share_the_executor(self, tiny_federation):
        with make_engine(tiny_federation, "thread") as engine:
            method = engine.method("exs")
            assert method.executor is engine.executor

    def test_search_batch_reuses_one_pool(self, tiny_federation):
        """Satellite regression: repeated ``search_batch(workers>1)``
        calls must not churn fresh pools."""
        with make_engine(tiny_federation, ThreadBackend(max_workers=4)) as engine:
            backend = engine.executor
            engine.search_batch(QUERIES, method="exs", workers=4)
            first = backend.pool
            assert first is not None
            engine.search_batch(QUERIES, method="exs", workers=4)
            engine.search_batch(QUERIES, method="exs", workers=2)
            assert backend.pool is first
        backend.close()

    @pytest.mark.parametrize("shards", [1, 3])
    def test_process_engine_ranks_like_inline(self, tiny_federation, shards):
        with make_engine(tiny_federation, "inline") as baseline:
            with make_engine(tiny_federation, "process", shards=shards) as engine:
                for query_list in (QUERIES,):
                    want = baseline.search_batch(query_list, method="exs", workers=4)
                    got = engine.search_batch(query_list, method="exs", workers=4)
                    for w, g in zip(want, got):
                        assert [m.relation_id for m in w.matches] == [
                            m.relation_id for m in g.matches
                        ]
                        for mw, mg in zip(w.matches, g.matches):
                            assert mg.score == pytest.approx(mw.score, abs=2e-5)

    def test_process_engine_survives_deltas(self, tiny_federation, tiny_relations):
        from repro.datamodel.relation import Relation

        fresh = Relation(
            "museums",
            ["City", "Museum", "Year"],
            [["paris", "louvre", "1793"], ["madrid", "prado", "1819"]],
            caption="museum opening dates",
        )
        with make_engine(tiny_federation, "inline", shards=2) as baseline:
            with make_engine(tiny_federation, "process", shards=2) as engine:
                for eng in (baseline, engine):
                    eng.method("exs")
                    eng.add_relations({"museums/museums": fresh})
                    eng.remove_relations([f"{tiny_relations[1].name}/{tiny_relations[1].name}"])
                want = baseline.search_batch(QUERIES, method="exs", workers=4)
                got = engine.search_batch(QUERIES, method="exs", workers=4)
                for w, g in zip(want, got):
                    assert [m.relation_id for m in w.matches] == [
                        m.relation_id for m in g.matches
                    ]

    def test_engine_close_releases_every_segment(self, tiny_federation):
        before_registry = set(live_segment_names())
        before_shm = shm_segments()
        engine = make_engine(tiny_federation, "process", shards=2)
        engine.search_batch(QUERIES, method="exs", workers=4)
        assert set(live_segment_names()) - before_registry  # buffers live
        engine.close()
        assert set(live_segment_names()) <= before_registry
        assert shm_segments() <= before_shm  # nothing leaked in /dev/shm

    def test_env_var_selects_engine_backend(self, tiny_federation, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "inline")
        with make_engine(tiny_federation, None) as engine:
            assert isinstance(engine.executor, InlineBackend)
            assert type(engine.executor) is InlineBackend


# -- serving integration --------------------------------------------------


class TestServingIntegration:
    def test_injected_backend_survives_drain(self, tiny_federation):
        import asyncio

        with make_engine(tiny_federation, "thread") as engine:
            engine.method("exs")
            backend = ThreadBackend(max_workers=2)

            async def roundtrip() -> None:
                async with ServingEngine(engine, executor=backend) as serving:
                    assert serving._executor is backend
                    result = await serving.submit(QUERIES[0], method="exs", k=3)
                    assert result.matches

            asyncio.run(roundtrip())
            # drain() must not close a backend it doesn't own.
            assert backend.map(lambda x: x, [1]) == [1]
            backend.close()

    def test_owned_backend_is_closed_on_drain(self, tiny_federation):
        import asyncio

        with make_engine(tiny_federation, "thread") as engine:
            engine.method("exs")
            serving = ServingEngine(engine, dispatch_workers=2)

            async def roundtrip() -> None:
                async with serving:
                    await serving.submit(QUERIES[0], method="exs", k=3)

            asyncio.run(roundtrip())
            owned = serving._executor
            assert isinstance(owned, ExecutionBackend)
            with pytest.raises(ExecutionError):
                owned.map(lambda x: x, [1, 2])
