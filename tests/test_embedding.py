"""Tests for the embedding substrate (hashing, semantic, co-occurrence, cache)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    CachingEncoder,
    CooccurrenceEncoder,
    HashedFeatureSpace,
    SemanticHashEncoder,
    mean_pool,
)
from repro.errors import ConfigurationError, NotFittedError


class TestHashedFeatureSpace:
    def test_deterministic_across_instances(self):
        a = HashedFeatureSpace(32, namespace="x")
        b = HashedFeatureSpace(32, namespace="x")
        np.testing.assert_array_equal(a.vector("token"), b.vector("token"))

    def test_namespaces_decorrelate(self):
        a = HashedFeatureSpace(64, namespace="x").vector("token")
        b = HashedFeatureSpace(64, namespace="y").vector("token")
        assert abs(float(a @ b)) < 0.5

    def test_unit_norm(self):
        v = HashedFeatureSpace(128).vector("anything")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_near_orthogonality(self):
        space = HashedFeatureSpace(256)
        sims = [
            abs(float(space.vector(f"a{i}") @ space.vector(f"b{i}"))) for i in range(20)
        ]
        assert max(sims) < 0.3

    def test_weighted_sum(self):
        space = HashedFeatureSpace(32)
        out = space.weighted_sum({"a": 2.0, "b": 0.0})
        np.testing.assert_allclose(out, 2.0 * space.vector("a"))

    def test_cache_eviction(self):
        space = HashedFeatureSpace(8, max_cache_size=2)
        for i in range(5):
            space.vector(f"t{i}")
        assert space.cache_size() <= 2

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            HashedFeatureSpace(0)


class TestMeanPool:
    def test_uniform(self):
        pooled = mean_pool(np.array([[2.0, 0.0], [0.0, 2.0]]))
        np.testing.assert_allclose(pooled, [np.sqrt(0.5), np.sqrt(0.5)])

    def test_weighted(self):
        pooled = mean_pool(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([1.0, 0.0]))
        np.testing.assert_allclose(pooled, [1.0, 0.0])

    def test_zero_weights_fall_back_to_uniform(self):
        pooled = mean_pool(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([0.0, 0.0]))
        assert np.linalg.norm(pooled) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_pool(np.empty((0, 4)))


class TestSemanticHashEncoder:
    def test_output_shape_and_norm(self, encoder64):
        out = encoder64.encode(["hello world", "foo"])
        assert out.shape == (2, 64)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-9)

    def test_empty_text_is_zero(self, encoder64):
        assert np.linalg.norm(encoder64.encode_one("")) == 0.0

    def test_deterministic(self, encoder64):
        a = encoder64.encode_one("covid vaccine")
        b = encoder64.encode_one("covid vaccine")
        np.testing.assert_array_equal(a, b)

    def test_synonyms_close_unrelated_far(self):
        enc = SemanticHashEncoder(dim=256)
        synonym = float(enc.encode_one("comirnaty") @ enc.encode_one("vaxzevria"))
        unrelated = float(enc.encode_one("comirnaty") @ enc.encode_one("harvest"))
        assert synonym > 0.5
        assert synonym > unrelated + 0.3

    def test_hypernym_weaker_than_synonym(self):
        enc = SemanticHashEncoder(dim=256)
        synonym = float(enc.encode_one("covid") @ enc.encode_one("coronavirus"))
        hyper = float(enc.encode_one("comirnaty") @ enc.encode_one("covid"))
        assert synonym > hyper > 0.05

    def test_sister_countries_weakly_related(self):
        enc = SemanticHashEncoder(dim=256)
        sisters = float(enc.encode_one("poland") @ enc.encode_one("austria"))
        assert 0.02 < sisters < 0.45

    def test_years_distinguishable(self):
        enc = SemanticHashEncoder(dim=256)
        assert float(enc.encode_one("2020") @ enc.encode_one("2021")) < 0.5

    def test_numbers_same_magnitude_related(self):
        enc = SemanticHashEncoder(dim=256)
        same_mag = float(enc.encode_one("45123") @ enc.encode_one("87654"))
        diff_mag = float(enc.encode_one("45123") @ enc.encode_one("7"))
        assert same_mag > diff_mag

    def test_phrase_concepts_detected(self):
        enc = SemanticHashEncoder(dim=256)
        phrase = float(
            enc.encode_one("climate change effects") @ enc.encode_one("global warming")
        )
        assert phrase > 0.2

    def test_morphological_similarity_via_chargrams(self):
        enc = SemanticHashEncoder(dim=256, concept_weight=0.0)
        related = float(enc.encode_one("running") @ enc.encode_one("runner"))
        unrelated = float(enc.encode_one("running") @ enc.encode_one("zebra"))
        assert related > unrelated

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            SemanticHashEncoder(dim=4)

    def test_clear_caches(self, encoder64):
        encoder64.encode_one("warm the cache")
        encoder64.clear_caches()
        # still functions after cache clear
        assert encoder64.encode_one("warm the cache").shape == (64,)

    @given(st.text(alphabet="abcdefgh 0123456789", max_size=40))
    @settings(max_examples=25)
    def test_unit_or_zero_norm(self, text):
        enc = SemanticHashEncoder(dim=32)
        norm = np.linalg.norm(enc.encode_one(text))
        assert norm == pytest.approx(1.0, abs=1e-9) or norm == 0.0


class TestCooccurrenceEncoder:
    CORPUS = [
        "dog barks at the cat",
        "cat chases the dog",
        "dog and cat are pets",
        "stocks rose on the market",
        "market prices and stocks fell",
        "investors watch the market and stocks",
    ] * 3

    def test_fit_and_encode(self):
        enc = CooccurrenceEncoder(dim=16, min_term_freq=2).fit(self.CORPUS)
        out = enc.encode(["dog cat", "stocks market"])
        assert out.shape == (2, 16)

    def test_distributional_similarity(self):
        enc = CooccurrenceEncoder(dim=16, min_term_freq=2).fit(self.CORPUS)
        related = enc.token_similarity("dog", "cat")
        unrelated = enc.token_similarity("dog", "stocks")
        assert related > unrelated

    def test_oov_fallback(self):
        enc = CooccurrenceEncoder(dim=16, min_term_freq=2).fit(self.CORPUS)
        out = enc.encode_one("zebra xylophone")
        assert np.linalg.norm(out) > 0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CooccurrenceEncoder(dim=8).encode(["x"])

    def test_tiny_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEncoder(dim=8).fit(["one"])

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEncoder(dim=1)
        with pytest.raises(ConfigurationError):
            CooccurrenceEncoder(window=0)


class TestCachingEncoder:
    def test_results_match_delegate(self, encoder64):
        cached = CachingEncoder(encoder64)
        texts = ["alpha", "beta", "alpha"]
        np.testing.assert_array_equal(cached.encode(texts), encoder64.encode(texts))

    def test_hit_counting(self, encoder64):
        cached = CachingEncoder(encoder64)
        cached.encode(["x", "y"])
        cached.encode(["x", "z"])
        info = cached.cache_info()
        assert info["hits"] == 1 and info["misses"] == 3

    def test_eviction(self, encoder64):
        cached = CachingEncoder(encoder64, max_size=2)
        cached.encode(["a", "b", "c"])
        assert cached.cache_info()["size"] <= 2

    def test_clear(self, encoder64):
        cached = CachingEncoder(encoder64)
        cached.encode(["a"])
        cached.clear()
        assert cached.cache_info() == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}

    def test_dim_forwarded(self, encoder64):
        assert CachingEncoder(encoder64).dim == 64

    def test_metrics_counters_mirror_cache_info(self, encoder64):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cached = CachingEncoder(encoder64, max_size=2, metrics=registry)
        cached.encode(["a", "b"])  # 2 misses
        cached.encode(["a", "c"])  # 1 hit, 1 miss + eviction (max_size=2)
        info = cached.cache_info()
        assert info == {"hits": 1, "misses": 3, "evictions": 1, "size": 2}
        counters = registry.snapshot()["counters"]
        assert counters["encoder_cache.hits"] == info["hits"]
        assert counters["encoder_cache.misses"] == info["misses"]
        assert counters["encoder_cache.evictions"] == info["evictions"]

    def test_threaded_counters_stay_consistent(self, encoder64):
        """Regression: pool threads encoding concurrently must account
        every text exactly once — hits + misses == texts seen, and the
        metrics counters agree with the int attributes."""
        import threading as _threading

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cached = CachingEncoder(encoder64, metrics=registry)
        texts = [f"word{i % 7}" for i in range(50)]
        barrier = _threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(5):
                cached.encode(texts)

        threads = [_threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        info = cached.cache_info()
        assert info["hits"] + info["misses"] == 4 * 5 * len(texts)
        assert info["size"] == 7
        assert info["evictions"] == 0
        counters = registry.snapshot()["counters"]
        assert counters["encoder_cache.hits"] == info["hits"]
        assert counters["encoder_cache.misses"] == info["misses"]
