"""Serving under concurrency: rank identity, writer deltas, drain races.

The functional suite (``test_serving.py``) drives the front end on a
quiet engine.  This one races it against the things production traffic
actually races against — multi-worker batch scans, a writer applying
federation deltas mid-flight, and a drain overlapping both — and holds
the serving layer to the engine's own consistency contract: every
answer equals what a direct ``engine.search`` would return against
*some* complete federation generation, never a torn mix.

Runs in the CI concurrency-stress shard under ``REPRO_SANITIZE=1``,
where the instrumented RWLock raises on misuse instead of deadlocking.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation

#: Topic pools give each slot distinct content, so rankings move when a
#: delta rewrites a slot's topic.
TOPICS = [
    ["vaccine", "dose", "immunity", "booster", "trial"],
    ["league", "striker", "goal", "stadium", "referee"],
    ["gdp", "inflation", "export", "tariff", "budget"],
    ["galaxy", "nebula", "quasar", "orbit", "comet"],
    ["sonata", "violin", "tempo", "chord", "opera"],
    ["glacier", "monsoon", "drought", "humidity", "frost"],
]

QUERIES = [
    "vaccine booster trial",
    "league stadium referee",
    "gdp export budget",
    "quasar orbit comet",
    "violin tempo opera",
    "monsoon drought frost",
]

N_SLOTS = 6
K = 4


def make_relation(slot: int, topic: int | None = None) -> Relation:
    words = TOPICS[(topic if topic is not None else slot) % len(TOPICS)]
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure"],
        [[f"{words[r % len(words)]} {slot}", str(100 * slot + r)] for r in range(4)],
        caption=f"{words[0]} {words[1]} table {slot}",
    )


def qualified(slot: int) -> str:
    return f"rel{slot}/rel{slot}"


def make_engine(relations: "list[Relation]") -> DiscoveryEngine:
    engine = DiscoveryEngine(dim=48)
    engine.index(Federation.from_relations(relations))
    engine.method("exs")
    return engine


def direct_ids(engine: DiscoveryEngine, query: str) -> "list[str]":
    return engine.search(query, method="exs", k=K).relation_ids()


# -- property: batched serving == direct search, any traffic shape -----------

traffic = st.lists(
    st.tuples(st.integers(0, len(QUERIES) - 1), st.sampled_from([2, K])),
    min_size=1,
    max_size=24,
)


@settings(max_examples=10, deadline=None)
@given(plan=traffic)
def test_serving_matches_direct_search_property(plan):
    """Any mix of concurrent (query, k) requests — coalesced across
    several keys and scanned with engine-side workers — is element-wise
    rank-identical to direct single-query search."""
    engine = make_engine([make_relation(s) for s in range(N_SLOTS)])

    async def serve():
        async with engine.serving(
            window_ms=2.0, max_batch=4, dispatch_workers=2, batch_workers=2
        ) as serving:
            return await asyncio.gather(
                *(serving.submit(QUERIES[qi], method="exs", k=k) for qi, k in plan)
            )

    served = asyncio.run(serve())
    for (qi, k), result in zip(plan, served):
        direct = engine.search(QUERIES[qi], method="exs", k=k)
        assert result.relation_ids() == direct.relation_ids(), (
            f"serving diverged from direct search for {QUERIES[qi]!r} (k={k})"
        )


# -- writer deltas racing served reads ---------------------------------------


def test_results_atomic_across_concurrent_delta():
    """A delta landing mid-traffic: every in-flight answer matches the
    pre-delta or the post-delta federation exactly — never a torn mix —
    and post-drain traffic sees only the post-delta state."""
    initial = [make_relation(s) for s in range(N_SLOTS)]
    engine = make_engine(initial)

    # The delta rewrites slot 0 from vaccines to astronomy: reference
    # rankings for both generations, built on throwaway cold engines.
    moved = make_relation(0, topic=3)
    pre = {q: direct_ids(make_engine(initial), q) for q in QUERIES}
    post_relations = [moved] + initial[1:]
    post = {q: direct_ids(make_engine(post_relations), q) for q in QUERIES}
    assert pre[QUERIES[0]] != post[QUERIES[0]], "delta must move a ranking"

    async def serve():
        async with engine.serving(
            window_ms=1.0, max_batch=4, dispatch_workers=2, batch_workers=2
        ) as serving:
            async def client(wave: int):
                return await asyncio.gather(
                    *(serving.submit(q, method="exs", k=K) for q in QUERIES)
                )

            first = asyncio.ensure_future(client(0))
            loop = asyncio.get_running_loop()
            writer = loop.run_in_executor(
                None, lambda: engine.update_relations({qualified(0): moved})
            )
            waves = [asyncio.ensure_future(client(w)) for w in range(1, 5)]
            results = [await first, *(await asyncio.gather(*waves))]
            await writer
            # Traffic after the delta is definitely post-generation.
            settled = await client(99)
            return results, settled

    results, settled = asyncio.run(serve())
    for wave in results:
        for query, result in zip(QUERIES, wave):
            ids = result.relation_ids()
            assert ids in (pre[query], post[query]), (
                f"torn result for {query!r}: {ids}"
            )
    for query, result in zip(QUERIES, settled):
        assert result.relation_ids() == post[query]


def test_drain_interleaves_with_writer_delta():
    """drain() while a writer wants the write lock: parked windows are
    flushed, every future resolves, the delta applies — no deadlock and
    no dropped request.  Bounded by a hard timeout so a regression
    fails fast instead of hanging the suite."""
    engine = make_engine([make_relation(s) for s in range(N_SLOTS)])
    moved = make_relation(1, topic=4)
    delta_applied = threading.Event()

    async def serve():
        serving = engine.serving(window_ms=60_000.0, max_batch=8, dispatch_workers=2)
        async with serving:
            parked = [
                asyncio.ensure_future(serving.submit(q, method="exs", k=K))
                for q in QUERIES
            ]
            await asyncio.sleep(0)
            assert serving.outstanding == len(QUERIES)

            def write():
                engine.update_relations({qualified(1): moved})
                delta_applied.set()

            writer = threading.Thread(target=write)
            writer.start()
            try:
                await serving.drain()
                results = await asyncio.gather(*parked)
            finally:
                writer.join(timeout=30.0)
            assert not writer.is_alive()
            return results

    results = asyncio.run(asyncio.wait_for(serve(), timeout=60.0))
    assert delta_applied.is_set()
    assert len(results) == len(QUERIES)
    for result in results:
        assert result.relation_ids()
    # The drained engine is coherent: direct search agrees with a cold
    # rebuild of the post-delta federation.
    post = make_engine(
        [make_relation(0), moved] + [make_relation(s) for s in range(2, N_SLOTS)]
    )
    for query in QUERIES:
        assert direct_ids(engine, query) == direct_ids(post, query)


def test_two_serving_engines_share_one_discovery_engine():
    """Sequential serving sessions over one engine: counters accumulate
    in the shared registry and the second session is unaffected by the
    first being closed."""
    engine = make_engine([make_relation(s) for s in range(N_SLOTS)])

    async def session():
        async with engine.serving(window_ms=1.0) as serving:
            await asyncio.gather(
                *(serving.submit(q, method="exs", k=K) for q in QUERIES)
            )

    asyncio.run(session())
    asyncio.run(session())
    counters = engine.metrics.snapshot()["counters"]
    assert counters["serving.completed"] == 2 * len(QUERIES)


@pytest.mark.parametrize("batch_workers", [1, 2])
def test_rank_identity_under_engine_worker_pool(batch_workers):
    """The engine-side chunked scan (workers>1) inside a served window
    must not reorder anything."""
    engine = make_engine([make_relation(s) for s in range(N_SLOTS)])

    async def serve():
        async with engine.serving(
            window_ms=2.0, max_batch=8, batch_workers=batch_workers
        ) as serving:
            return await asyncio.gather(
                *(serving.submit(q, method="exs", k=K) for q in QUERIES)
            )

    for query, result in zip(QUERIES, asyncio.run(serve())):
        assert result.relation_ids() == direct_ids(engine, query)


# -- the semantic cache under racing writers ---------------------------------


def make_cached_engine(relations: "list[Relation]") -> DiscoveryEngine:
    engine = DiscoveryEngine(dim=48, query_cache=True)
    engine.index(Federation.from_relations(relations))
    engine.method("exs")
    return engine


def test_results_atomic_across_concurrent_delta_with_cache():
    """The cached variant of the atomicity property: with a warm
    semantic cache in front of the methods, a mid-traffic delta still
    yields only pre- or post-delta answers — a cache hit from a
    generation other than one the federation actually held would be a
    torn read — and settled traffic sees only the post-delta state."""
    initial = [make_relation(s) for s in range(N_SLOTS)]
    engine = make_cached_engine(initial)
    moved = make_relation(0, topic=3)
    pre = {q: direct_ids(make_engine(initial), q) for q in QUERIES}
    post = {q: direct_ids(make_engine([moved] + initial[1:]), q) for q in QUERIES}
    assert pre[QUERIES[0]] != post[QUERIES[0]], "delta must move a ranking"

    for query in QUERIES:  # warm the cache at the pre-delta generation
        engine.search(query, method="exs", k=K)

    async def serve():
        async with engine.serving(
            window_ms=1.0, max_batch=4, dispatch_workers=2, batch_workers=2
        ) as serving:

            async def client(wave: int):
                return await asyncio.gather(
                    *(serving.submit(q, method="exs", k=K) for q in QUERIES)
                )

            first = asyncio.ensure_future(client(0))
            loop = asyncio.get_running_loop()
            writer = loop.run_in_executor(
                None, lambda: engine.update_relations({qualified(0): moved})
            )
            waves = [asyncio.ensure_future(client(w)) for w in range(1, 5)]
            results = [await first, *(await asyncio.gather(*waves))]
            await writer
            settled = await client(99)  # recomputes + re-warms post-delta
            second = await client(100)  # guaranteed cache hits, must stay post
            return results, settled, second

    results, settled, second = asyncio.run(serve())
    for wave in results:
        for query, result in zip(QUERIES, wave):
            ids = result.relation_ids()
            assert ids in (pre[query], post[query]), f"torn result for {query!r}: {ids}"
    for query, result in zip(QUERIES, settled):
        assert result.relation_ids() == post[query]
    for query, result in zip(QUERIES, second):
        assert result.relation_ids() == post[query]
    # The settled wave re-warmed every query, so the follow-up wave rode
    # the cache: the hit path was genuinely exercised post-delta.
    counters = engine.metrics.snapshot()["counters"]
    assert counters.get("serving.cache_hits", 0) >= len(QUERIES)


def test_drain_with_cache_never_leaks_a_stale_generation():
    """drain() racing a writer on a cached engine: the parked windows
    may answer from either side of the delta, but once the writer has
    published, no signature — neither the pre-warmed one nor the one
    the draining windows computed and tried to backfill — serves
    anything but the post-delta ranking."""
    initial = [make_relation(s) for s in range(N_SLOTS)]
    engine = make_cached_engine(initial)
    moved = make_relation(1, topic=4)
    delta_applied = threading.Event()

    for query in QUERIES:  # warm signature (method, k=K) pre-delta
        engine.search(query, method="exs", k=K)

    async def serve():
        serving = engine.serving(window_ms=60_000.0, max_batch=8, dispatch_workers=2)
        async with serving:
            # k=2 is a different cache signature: these MISS the warm
            # cache and genuinely park in the 60s window.
            parked = [
                asyncio.ensure_future(serving.submit(q, method="exs", k=2))
                for q in QUERIES
            ]
            await asyncio.sleep(0)
            assert serving.outstanding == len(QUERIES)

            def write():
                engine.update_relations({qualified(1): moved})
                delta_applied.set()

            writer = threading.Thread(target=write)
            writer.start()
            try:
                await serving.drain()
                results = await asyncio.gather(*parked)
            finally:
                writer.join(timeout=30.0)
            assert not writer.is_alive()
            return results

    results = asyncio.run(asyncio.wait_for(serve(), timeout=60.0))
    assert delta_applied.is_set()
    assert len(results) == len(QUERIES)
    for result in results:
        assert result.relation_ids()

    post = make_engine(
        [make_relation(0), moved] + [make_relation(s) for s in range(2, N_SLOTS)]
    )
    for query in QUERIES:
        # The pre-delta warm entries (k=K) are dead: generation moved.
        assert direct_ids(engine, query) == direct_ids(post, query)
        # And whatever the drained windows inserted at k=2 — possibly a
        # pre-delta computation — was dropped or superseded: the served
        # answer equals the post-delta computation.
        got = engine.search(query, method="exs", k=2).relation_ids()
        assert got == post.search(query, method="exs", k=2).relation_ids()
