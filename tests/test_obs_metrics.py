"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0

    def test_thread_safety(self):
        counter = Counter("c")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestHistogram:
    def test_empty_summary_is_zero(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.summary()["p99_ms"] == 0.0

    def test_percentiles_nearest_rank(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.max == 100
        assert h.mean == pytest.approx(50.5)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(2.0)
        summary = h.summary()
        assert set(summary) == {
            "count",
            "total_ms",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        }
        assert summary["count"] == 1
        assert summary["total_ms"] == pytest.approx(2.0)


class TestMetricsRegistry:
    def test_counter_and_histogram_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_timer_records_elapsed_ms(self):
        registry = MetricsRegistry()
        with registry.timer("stage") as timer:
            time.sleep(0.005)
        assert timer.elapsed_ms >= 4.0
        assert registry.histogram("stage").count == 1

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        with registry.timer("scan"):
            pass
        snap = registry.snapshot()
        assert snap["counters"] == {"queries": 3}
        assert "scan" in snap["stages"]
        assert snap["stages"]["scan"]["count"] == 1
        assert snap["stages"]["scan"]["p50_ms"] <= snap["stages"]["scan"]["p99_ms"]

    def test_format_table_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc()
        with registry.timer("exs.scan"):
            pass
        table = registry.format_table()
        assert "engine.queries" in table
        assert "exs.scan" in table
        assert "p95" in table

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.value == 0
        assert registry.histogram("h").count == 0

    def test_concurrent_timers(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(200):
                with registry.timer("stage"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.histogram("stage").count == 800


class TestLockedReads:
    """Counter.value / Gauge.value read under the same lock the writers
    hold — a reader racing inc()/set() must always observe a value some
    finished write actually published (regression: the properties used
    to read ``_value`` with no lock at all)."""

    def test_counter_reads_race_increments(self):
        counter = Counter("c")
        stop = threading.Event()
        observed: list[int] = []

        def reader():
            last = 0
            while not stop.is_set():
                value = counter.value
                assert value >= last  # monotone: no torn/stale regressions
                last = value
            observed.append(last)

        def writer():
            for _ in range(20_000):
                counter.inc()

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert counter.value == 80_000
        assert all(final <= 80_000 for final in observed)

    def test_gauge_reads_race_sets(self):
        gauge = Gauge("g")
        published = [float(v) for v in range(64)]
        stop = threading.Event()
        seen: list[float] = []

        def reader():
            while not stop.is_set():
                seen.append(gauge.value)

        def writer():
            for _ in range(500):
                for value in published:
                    gauge.set(value)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        allowed = {0.0} | set(published)
        assert set(seen) <= allowed  # only values some set() published
        assert gauge.value == published[-1]
