"""Integration tests for the experiment harness (small scale)."""

import pytest

from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.splits import train_test_split_pairs
from repro.experiments import (
    ExperimentConfig,
    format_quality_table,
    format_timing_table,
    run_case_study,
    run_quality_experiment,
    run_timing_experiment,
)
from repro.experiments.config import ALL_METHODS, CORE_METHODS
from repro.experiments.quality import make_corpus, prepare_methods
from repro.experiments.timing import timing_rows


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(
        n_tables=60,
        encoder_dim=96,
        k=20,
        methods=("cts", "anns", "exs", "ws"),
        method_params={
            "cts": {"umap_epochs": 30, "min_cluster_size": 10},
        },
    )


@pytest.fixture(scope="module")
def small_corpus(small_config):
    return make_corpus(small_config)


class TestConfig:
    def test_core_params_filtering(self):
        config = ExperimentConfig(method_params={"cts": {"seed": 1}, "ws": {"ridge": 0.1}})
        assert config.core_params() == {"cts": {"seed": 1}}
        assert config.baseline_params("ws") == {"ridge": 0.1}
        assert config.baseline_params("mdr") == {}

    def test_method_lists_cover_paper(self):
        assert set(CORE_METHODS) == {"cts", "anns", "exs"}
        assert len(ALL_METHODS) == 8

    def test_unknown_corpus(self):
        with pytest.raises(ValueError):
            make_corpus(ExperimentConfig(corpus="nope"))


class TestPrepareMethods:
    def test_all_requested_methods_built(self, small_config, small_corpus):
        train, _ = train_test_split_pairs(small_corpus.qrels, seed=0)
        searchers = prepare_methods(
            small_corpus, DatasetScale.SMALL, small_config, train
        )
        assert set(searchers) == set(small_config.methods)
        for searcher in searchers.values():
            result = searcher.search("vaccination europe", k=3)
            assert result.method in small_config.methods

    def test_unknown_method_rejected(self, small_corpus, small_config):
        bad = ExperimentConfig(n_tables=60, methods=("magic",))
        train, _ = train_test_split_pairs(small_corpus.qrels, seed=0)
        with pytest.raises(ValueError):
            prepare_methods(small_corpus, DatasetScale.SMALL, bad, train)


class TestQualityExperiment:
    def test_single_scale_run(self, small_config, small_corpus):
        cells = run_quality_experiment(
            small_config,
            QueryCategory.SHORT,
            scales=(DatasetScale.SMALL,),
            corpus=small_corpus,
        )
        assert len(cells) == len(small_config.methods)
        # sorted by MAP descending within the scale
        maps = [c.report.map for c in cells]
        assert maps == sorted(maps, reverse=True)
        for cell in cells:
            assert 0.0 <= cell.report.map <= 1.0
            assert set(cell.report.ndcg) == {5, 10, 15, 20}

    def test_table_formatting(self, small_config, small_corpus):
        cells = run_quality_experiment(
            small_config,
            QueryCategory.SHORT,
            scales=(DatasetScale.SMALL,),
            corpus=small_corpus,
        )
        table = format_quality_table(cells, "Test Table")
        assert "Test Table" in table
        assert "SD" in table
        assert "MAP" in table


class TestTimingExperiment:
    def test_timing_cells(self, small_config, small_corpus):
        cells = run_timing_experiment(
            small_config,
            scales=(DatasetScale.SMALL,),
            categories=(QueryCategory.SHORT,),
            queries_per_category=2,
            corpus=small_corpus,
        )
        assert len(cells) == len(small_config.methods)
        for cell in cells:
            assert cell.report.mean_ms > 0

    def test_timing_rows_and_format(self, small_config, small_corpus):
        cells = run_timing_experiment(
            small_config,
            scales=(DatasetScale.SMALL,),
            categories=(QueryCategory.SHORT,),
            queries_per_category=2,
            corpus=small_corpus,
        )
        rows = timing_rows(cells, ("cts", "anns"))
        assert rows[0][0] == "SD"
        table = format_timing_table(rows, "Timing")
        assert "CTS" in table and "ANNS" in table


class TestCaseStudy:
    def test_reports_structure(self):
        reports = run_case_study(dim=96, n_per_group=3, k=3)
        assert set(reports) == {"exs", "anns", "cts"}
        for report in reports.values():
            assert 0.0 <= report.target_precision_at_k <= 1.0
            assert report.mean_target_rank >= 1.0
            assert report.summary()

    def test_groups_cover_all_tables(self):
        from repro.experiments import build_case_study_corpus

        federation, groups = build_case_study_corpus(n_per_group=3)
        for relation_id, _ in federation.relations():
            assert groups.group_of(relation_id) != "unknown"
