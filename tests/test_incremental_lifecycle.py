"""Incremental federation lifecycle: deltas through store, methods, engine.

The load-bearing invariant: after ANY sequence of add/update/remove
deltas, ExS and ANNS (exact index) rank exactly what a from-scratch
``index()`` of the final federation state ranks — and CTS does too
whenever its drift policy triggered a rebuild.  The cold-rebuild
comparison federation is built in the *store's* final relation order
(updates keep their position, adds append, removes compact), which is
the order the incremental store actually holds.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscoveryEngine, FederationDelta
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.semimg import build_relation_embedding
from repro.datamodel.relation import Federation, Relation
from repro.embedding.semantic import SemanticHashEncoder
from repro.errors import ConfigurationError, NotFittedError

SCORE_TOL = 1e-9

#: Topic word pools used to give every relation distinct content.
TOPICS = [
    ["vaccine", "dose", "immunity", "booster", "trial"],
    ["league", "striker", "goal", "stadium", "referee"],
    ["gdp", "inflation", "export", "tariff", "budget"],
    ["galaxy", "nebula", "quasar", "orbit", "comet"],
    ["sonata", "violin", "tempo", "chord", "opera"],
    ["glacier", "monsoon", "drought", "humidity", "frost"],
    ["enzyme", "protein", "genome", "ribosome", "cell"],
    ["harbor", "cargo", "freight", "vessel", "anchor"],
]

QUERIES = ["vaccine booster trial", "league stadium", "gdp export", "quasar orbit"]


def make_relation(slot: int, version: int = 0) -> Relation:
    """A deterministic relation whose content depends on (slot, version)."""
    words = TOPICS[slot % len(TOPICS)]
    tag = f"v{version}"
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure", "Year"],
        [
            [f"{words[r % len(words)]} {tag}", str(100 * slot + r), str(2018 + version)]
            for r in range(3 + slot % 2)
        ],
        caption=f"{words[0]} {words[1]} table {tag}",
    )


def qualified(slot: int) -> str:
    return f"rel{slot}/rel{slot}"


def make_engine() -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        method_params={
            # Exact index + an exhaustive candidate budget make ANNS
            # deterministic regardless of point-insertion order; HNSW
            # graphs depend on that order, so they cannot promise
            # incremental == cold equality.
            "anns": {"index_kind": "exact", "n_candidates": 10_000},
        },
    )


def rankings(engine: DiscoveryEngine, method: str) -> dict[str, list]:
    out = {}
    for query in QUERIES:
        result = engine.search(query, method=method, k=100, h=-1.0)
        out[query] = [(m.relation_id, m.score) for m in result.matches]
    return out


def assert_same_rankings(incremental: DiscoveryEngine, cold: DiscoveryEngine, method: str):
    got, want = rankings(incremental, method), rankings(cold, method)
    for query in QUERIES:
        assert [rid for rid, _ in got[query]] == [rid for rid, _ in want[query]], (
            f"{method} ranking diverged for {query!r}"
        )
        for (_, g), (_, w) in zip(got[query], want[query]):
            assert g == pytest.approx(w, abs=SCORE_TOL)


# -- hypothesis property: delta sequences == cold rebuild -----------------

op_steps = st.lists(
    st.tuples(st.sampled_from(["add", "update", "remove"]), st.integers(0, 7)),
    min_size=1,
    max_size=8,
)


@settings(max_examples=12, deadline=None)
@given(steps=op_steps)
def test_delta_sequences_match_cold_rebuild(steps):
    current: dict[int, Relation] = {i: make_relation(i) for i in range(4)}
    versions: dict[int, int] = {i: 0 for i in range(4)}
    engine = make_engine().index(
        Federation.from_relations([current[i] for i in sorted(current)])
    )
    # Build before mutating: apply_delta only reaches *built* indexes.
    engine.method("exs")
    engine.method("anns")

    for op, slot in steps:
        # Normalize invalid draws instead of discarding the example.
        if op == "add" and slot in current:
            op = "update"
        elif op in ("update", "remove") and slot not in current:
            op = "add"
        if op == "remove" and len(current) == 1:
            op = "update"

        if op == "add":
            versions[slot] = versions.get(slot, -1) + 1
            current[slot] = make_relation(slot, versions[slot])
            engine.add_relations({qualified(slot): current[slot]})
        elif op == "update":
            versions[slot] += 1
            current[slot] = make_relation(slot, versions[slot])
            engine.update_relations({qualified(slot): current[slot]})
        else:
            del current[slot]
            engine.remove_relations([qualified(slot)])

    # Cold rebuild in the store's final relation order.
    order = [int(rid.partition("/")[0][3:]) for rid in engine.embeddings.relation_ids()]
    assert sorted(order) == sorted(current)
    cold = make_engine().index(Federation.from_relations([current[i] for i in order]))

    assert engine.embeddings.generation == len(steps)
    assert_same_rankings(engine, cold, "exs")
    assert_same_rankings(engine, cold, "anns")


# -- CTS drift policy -----------------------------------------------------


CTS_PARAMS = {"min_cluster_size": 4, "umap_neighbors": 5, "umap_epochs": 30}


def cts_engine(drift_threshold: float) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48, method_params={"cts": dict(CTS_PARAMS, drift_threshold=drift_threshold)}
    )


class TestCTSLifecycle:
    def test_rebuild_matches_cold_index(self):
        current = {i: make_relation(i) for i in range(6)}
        engine = cts_engine(drift_threshold=1e-9)
        engine.index(Federation.from_relations([current[i] for i in sorted(current)]))
        engine.method("cts")

        current[6] = make_relation(6)
        engine.add_relations({qualified(6): current[6]})
        del current[1]
        engine.remove_relations([qualified(1)])

        # A vanishing threshold forces the re-cluster on every delta.
        assert engine.metrics.counter("cts.rebuilds").value >= 1
        order = [
            int(rid.partition("/")[0][3:]) for rid in engine.embeddings.relation_ids()
        ]
        cold = cts_engine(drift_threshold=1e-9)
        cold.index(Federation.from_relations([current[i] for i in order]))
        assert_same_rankings(engine, cold, "cts")

    def test_incremental_path_tracks_drift_without_rebuild(self):
        current = {i: make_relation(i) for i in range(6)}
        engine = cts_engine(drift_threshold=100.0)  # never rebuild
        engine.index(Federation.from_relations([current[i] for i in sorted(current)]))
        engine.method("cts")

        engine.add_relations({qualified(7): make_relation(7)})
        assert engine.metrics.counter("cts.rebuilds").value == 0
        drift = engine.metrics.gauge("cts.drift").value
        assert drift > 0.0  # fresh values were assigned to medoids post hoc

        # The patched index still answers; the new relation is rankable.
        result = engine.search("harbor cargo vessel", method="cts", k=10, h=-1.0)
        assert qualified(7) in result.relation_ids()


# -- engine lifecycle plumbing --------------------------------------------


@pytest.fixture()
def live_engine():
    current = {i: make_relation(i) for i in range(4)}
    engine = make_engine().index(
        Federation.from_relations([current[i] for i in sorted(current)])
    )
    engine.method("exs")
    engine.method("anns")
    return engine, current


class TestEngineLifecycle:
    def test_delta_records_metrics_and_generation(self, live_engine):
        engine, _ = live_engine
        assert engine.metrics.gauge("engine.generation").value == 0
        delta = engine.add_relations({qualified(5): make_relation(5)})
        assert isinstance(delta, FederationDelta)
        assert delta.generation == 1
        assert delta.n_changes == 1
        engine.update_relations({qualified(5): make_relation(5, version=1)})
        engine.remove_relations([qualified(5)])
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.deltas"] == 3
        assert snapshot["counters"]["engine.relations_added"] == 1
        assert snapshot["counters"]["engine.relations_updated"] == 1
        assert snapshot["counters"]["engine.relations_removed"] == 1
        assert snapshot["gauges"]["engine.generation"] == 3
        assert snapshot["gauges"]["exs.generation"] == 3
        assert snapshot["counters"]["exs.deltas"] == 3
        assert "engine.generation" in engine.metrics.format_table()

    def test_add_existing_rejected_atomically(self, live_engine):
        engine, _ = live_engine
        before = engine.embeddings.generation
        with pytest.raises(ConfigurationError):
            engine.add_relations(
                {qualified(6): make_relation(6), qualified(0): make_relation(0)}
            )
        assert engine.embeddings.generation == before
        assert qualified(6) not in engine.embeddings

    def test_update_missing_rejected_atomically(self, live_engine):
        engine, _ = live_engine
        before = engine.embeddings.relation_ids()
        with pytest.raises(ConfigurationError):
            engine.update_relations(
                {qualified(0): make_relation(0, 1), qualified(9): make_relation(9)}
            )
        assert engine.embeddings.relation_ids() == before

    def test_remove_missing_and_duplicate_rejected(self, live_engine):
        engine, _ = live_engine
        with pytest.raises(ConfigurationError):
            engine.remove_relations([qualified(9)])
        with pytest.raises(ConfigurationError):
            engine.remove_relations([qualified(0), qualified(0)])

    def test_delta_may_not_empty_the_federation(self, live_engine):
        engine, current = live_engine
        with pytest.raises(ConfigurationError):
            engine.remove_relations([qualified(i) for i in sorted(current)])
        assert engine.embeddings.n_relations == len(current)

    def test_update_changes_scores(self, live_engine):
        engine, _ = live_engine
        query = "league stadium goal"

        def score_of(rid):
            result = engine.search(query, method="exs", k=100, h=-1.0)
            return dict((m.relation_id, m.score) for m in result.matches)[rid]

        before = score_of(qualified(1))
        engine.update_relations({qualified(1): make_relation(1, version=5)})
        assert score_of(qualified(1)) != pytest.approx(before, abs=SCORE_TOL)

    def test_lazy_method_built_after_delta_sees_current_state(self):
        current = {i: make_relation(i) for i in range(4)}
        engine = make_engine().index(
            Federation.from_relations([current[i] for i in sorted(current)])
        )
        engine.method("exs")  # anns deliberately NOT built yet
        engine.add_relations({qualified(7): make_relation(7)})
        # First ANNS use builds from the post-delta store.
        result = engine.search("harbor cargo vessel", method="anns", k=10, h=-1.0)
        assert qualified(7) in result.relation_ids()

    def test_concurrent_searches_never_torn(self, live_engine):
        engine, _ = live_engine
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    batch = engine.search_batch(
                        QUERIES, method="exs", k=100, h=-1.0, workers=2
                    )
                    for result in batch:
                        ids = set(result.relation_ids())
                        # Every answer reflects one complete generation:
                        # rel5 and rel0 swap atomically below, so a torn
                        # read would show both or neither.
                        assert (qualified(0) in ids) != (qualified(5) in ids)
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(10):
                engine.add_relations({qualified(5): make_relation(5)})
                engine.remove_relations([qualified(0)])
                engine.add_relations({qualified(0): make_relation(0)})
                engine.remove_relations([qualified(5)])
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors

    def test_search_all_methods_holds_one_generation(self):
        """All three methods answer from the SAME store generation.

        ``search_all_methods`` takes the read lock once around all
        three searches; a concurrent writer must never land between
        the ExS and the CTS run.  The old per-method ``search`` calls
        each took their own read lock, letting a delta slip in between.
        """
        current = {i: make_relation(i) for i in range(6)}
        engine = DiscoveryEngine(
            dim=48,
            method_params={
                "anns": {"index_kind": "exact", "n_candidates": 10_000},
                "cts": dict(CTS_PARAMS, drift_threshold=100.0),
            },
        ).index(Federation.from_relations([current[i] for i in sorted(current)]))
        for name in engine.METHODS:
            method = engine.method(name)
            original = method.search

            def wrapped(query, *, k=10, h=0.0, _original=original):
                observed.append(engine.embeddings.generation)
                return _original(query, k=k, h=h)

            method.search = wrapped

        observed: list[int] = []
        errors: list[BaseException] = []
        done = threading.Event()

        def writer():
            version = 0
            while not done.is_set():
                try:
                    version += 1
                    engine.update_relations({qualified(0): make_relation(0, version)})
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)
                    return

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                engine.search_all_methods("vaccine booster trial", k=5, h=-1.0)
        finally:
            done.set()
            thread.join()
        assert not errors
        assert engine.embeddings.generation > 0, "writer never ran"
        assert len(observed) == 20 * len(engine.METHODS)
        for i in range(0, len(observed), len(engine.METHODS)):
            chunk = observed[i : i + len(engine.METHODS)]
            assert len(set(chunk)) == 1, (
                f"generations {chunk} observed within one search_all_methods call"
            )


# -- store-level lifecycle -------------------------------------------------


class TestStoreLifecycle:
    @pytest.fixture()
    def store(self):
        federation = Federation.from_relations([make_relation(i) for i in range(3)])
        return DiscoveryEngine(dim=48).index(federation).embeddings

    def test_generation_monotonic(self, store):
        assert store.generation == 0
        store.add_relation(qualified(4), make_relation(4))
        assert store.generation == 1
        store.update_relation(qualified(4), make_relation(4, 1))
        assert store.generation == 2
        store.remove_relation(qualified(4))
        assert store.generation == 3

    def test_update_keeps_position_add_appends(self, store):
        store.update_relation(qualified(1), make_relation(1, 1))
        assert store.relation_ids()[1] == qualified(1)
        store.add_relation(qualified(4), make_relation(4))
        assert store.relation_ids()[-1] == qualified(4)

    def test_remove_last_relation_refused(self, store):
        store.remove_relation(qualified(0))
        store.remove_relation(qualified(1))
        with pytest.raises(ConfigurationError):
            store.remove_relation(qualified(2))

    def test_embedding_id_mismatch_rejected(self, store):
        embedding = build_relation_embedding(
            qualified(4), make_relation(4), store.encoder
        )
        with pytest.raises(ConfigurationError):
            store.add_relation(qualified(5), embedding)

    def test_dim_mismatch_rejected(self, store):
        other = SemanticHashEncoder(dim=32)
        embedding = build_relation_embedding(qualified(4), make_relation(4), other)
        with pytest.raises(ConfigurationError):
            store.add_relation(qualified(4), embedding)

    def test_apply_delta_requires_index(self):
        with pytest.raises(NotFittedError):
            ExhaustiveSearch().apply_delta([], [], ["x"])

    def test_generation_persists_across_save_load(self, store, tmp_path):
        from repro.core import load_federation_embeddings, save_federation_embeddings

        store.add_relation(qualified(4), make_relation(4))
        store.remove_relation(qualified(0))
        path = tmp_path / "live.npz"
        save_federation_embeddings(store, path)
        loaded = load_federation_embeddings(path, store.encoder)
        assert loaded.generation == store.generation == 2
        assert loaded.relation_ids() == store.relation_ids()
